//! Spatially uncorrelated synthetic data (§8.1).
//!
//! "Data at every node i is modeled as `x_t = α_i x_{t-1} + e_t` where
//! `e_t ~ U(0, 1)` and `α_i ~ U(0.4, 0.8)`. … Every node is initialized with
//! α₁ = 1. This model is updated for every measurement." Because the α_i are
//! drawn independently of position, spatial neighbors share no structure —
//! this is the adversarial case for δ-clustering (Figs 13 & 15).

use elink_armodel::RlsState;
use elink_metric::{Euclidean, Feature};
use elink_topology::Topology;
use rand::Rng;
use rand::SeedableRng;

/// Uncorrelated synthetic data set on a random-uniform topology.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    topology: Topology,
    /// Ground-truth AR(1) coefficients per node.
    true_alphas: Vec<f64>,
    /// Per-node measurement series.
    series: Vec<Vec<f64>>,
}

impl SyntheticDataset {
    /// Generates `n` nodes with `steps` measurements each. The paper uses
    /// 100,000 readings; experiments here default to fewer because feature
    /// estimates converge long before that (the AR(1) estimator error decays
    /// as `1/√steps`).
    pub fn generate(n: usize, steps: usize, seed: u64) -> SyntheticDataset {
        assert!(n >= 1 && steps >= 2);
        let topology = Topology::random_synthetic(n, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1CE_BA5E);
        let mut true_alphas = Vec::with_capacity(n);
        let mut series = Vec::with_capacity(n);
        for _ in 0..n {
            let alpha = rng.gen_range(0.4..0.8);
            true_alphas.push(alpha);
            let mut xs = Vec::with_capacity(steps);
            // Start from the stationary-ish mean e/(1-α) with e ≈ 0.5.
            xs.push(0.5 / (1.0 - alpha));
            for _ in 1..steps {
                let e: f64 = rng.gen_range(0.0..1.0);
                let prev = *xs.last().unwrap();
                xs.push(alpha * prev + e);
            }
            series.push(xs);
        }
        SyntheticDataset {
            topology,
            true_alphas,
            series,
        }
    }

    /// The random topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Ground-truth α_i values (for tests; the protocols never see these).
    pub fn true_alphas(&self) -> &[f64] {
        &self.true_alphas
    }

    /// Per-node series.
    pub fn series(&self) -> &[Vec<f64>] {
        &self.series
    }

    /// Fits the per-node AR(1) features by streaming every measurement
    /// through RLS.
    ///
    /// The noise `e_t ~ U(0, 1)` has mean 0.5, so a no-intercept regression
    /// of `x_t` on `x_{t-1}` is asymptotically biased (it absorbs the noise
    /// mean into the slope). We therefore regress with an intercept —
    /// regressor `(x_{t-1}, 1)` — and report the slope as the AR(1)
    /// coefficient feature, which consistently recovers the true α_i.
    pub fn features(&self) -> Vec<Feature> {
        self.series
            .iter()
            .map(|xs| {
                let mut rls = RlsState::new(2, 1e6);
                // §8.1: "every node is initialized with α₁ = 1" — a single
                // pseudo-observation consistent with slope 1, intercept 0.
                rls.update(&[1.0, 0.0], 1.0);
                for w in xs.windows(2) {
                    rls.update(&[w[0], 1.0], w[1]);
                }
                Feature::scalar(rls.coefficients()[0])
            })
            .collect()
    }

    /// The natural metric for 1-d coefficient features.
    pub fn metric(&self) -> Euclidean {
        Euclidean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticDataset {
        SyntheticDataset::generate(100, 2000, 11)
    }

    #[test]
    fn sizes_and_connectivity() {
        let d = small();
        assert_eq!(d.topology().n(), 100);
        assert_eq!(d.series().len(), 100);
        assert_eq!(d.series()[0].len(), 2000);
        assert!(d.topology().graph().is_connected());
    }

    #[test]
    fn alphas_in_range() {
        let d = small();
        assert!(d.true_alphas().iter().all(|&a| (0.4..0.8).contains(&a)));
    }

    #[test]
    fn fitted_features_recover_true_alphas() {
        let d = small();
        let feats = d.features();
        let mut worst = 0.0_f64;
        for (f, &a) in feats.iter().zip(d.true_alphas()) {
            worst = worst.max((f.components()[0] - a).abs());
        }
        assert!(worst < 0.15, "worst alpha error {worst}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.true_alphas(), b.true_alphas());
        assert_eq!(a.series()[5], b.series()[5]);
    }

    #[test]
    fn spatially_uncorrelated() {
        // Feature distance between neighbors should be statistically the
        // same as between random pairs (no spatial structure).
        let d = SyntheticDataset::generate(300, 500, 23);
        let feats = d.features();
        let g = d.topology().graph();
        let n = d.topology().n();
        let dist = |i: usize, j: usize| (feats[i].components()[0] - feats[j].components()[0]).abs();
        let mut neigh = Vec::new();
        for v in 0..n {
            for &w in g.neighbors(v) {
                if (w as usize) > v {
                    neigh.push(dist(v, w as usize));
                }
            }
        }
        let mut all = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                all.push(dist(i, j));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&neigh) / mean(&all);
        assert!(
            (0.8..1.25).contains(&ratio),
            "neighbor/global distance ratio {ratio} suggests spurious correlation"
        );
    }

    #[test]
    fn series_values_bounded_by_stationary_envelope() {
        // x_t <= α x_{t-1} + 1 keeps the series below 1/(1-α_max) + slack.
        let d = small();
        for (xs, &a) in d.series().iter().zip(d.true_alphas()) {
            let bound = 1.0 / (1.0 - a) + 1.0;
            assert!(xs.iter().all(|&x| x >= 0.0 && x <= bound));
        }
    }
}
