//! Recursive least squares: the exact online model updates of Appendix A.
//!
//! With `P = (X Xᵀ)⁻¹` and `b = X y`, a new regressor/output pair `(x, y)`
//! updates the state via the paper's equations (6)–(8):
//!
//! ```text
//! b_k = b_{k-1} + x y                                   (6)
//! P_k = P_{k-1} − P_{k-1} x [1 + xᵀ P_{k-1} x]⁻¹ xᵀ P_{k-1}   (7)
//! α̂_k = α̂_{k-1} − P_k (x xᵀ α̂_{k-1} − x y)                  (8)
//! ```
//!
//! Equation (7) is the Sherman–Morrison rank-1 inverse update, so the
//! recursion is *exact*: a node that starts from a batch fit and applies RLS
//! per measurement holds the same coefficients it would get by refitting
//! from scratch (verified by the property test below).

use elink_linalg::lu::LuFactors;
use elink_linalg::Matrix;
use elink_metric::Feature;

/// Online least-squares state for a k-dimensional regression.
#[derive(Debug, Clone)]
pub struct RlsState {
    /// `P = (X Xᵀ)⁻¹` (k × k).
    p: Matrix,
    /// `b = X y` (k).
    b: Vec<f64>,
    /// Current coefficient estimate α̂.
    alpha: Vec<f64>,
    /// Number of samples absorbed.
    samples: usize,
}

impl RlsState {
    /// Initializes with `P = scale · I` and zero coefficients — the standard
    /// RLS "large initial covariance" start, equivalent to ridge regression
    /// with penalty `1/scale` (so use a large `scale`, e.g. `1e6`).
    pub fn new(dim: usize, scale: f64) -> RlsState {
        assert!(dim >= 1 && scale > 0.0);
        let mut p = Matrix::zeros(dim, dim);
        for i in 0..dim {
            p[(i, i)] = scale;
        }
        RlsState {
            p,
            b: vec![0.0; dim],
            alpha: vec![0.0; dim],
            samples: 0,
        }
    }

    /// Initializes exactly from batch data: computes `P = (Σ x xᵀ)⁻¹`,
    /// `b = Σ x y`, `α = P b`. Returns `None` if the Gram matrix is
    /// singular (add more data or use [`RlsState::new`]).
    pub fn from_batch(xs: &[Vec<f64>], ys: &[f64]) -> Option<RlsState> {
        assert_eq!(xs.len(), ys.len());
        let dim = xs.first()?.len();
        let mut gram = Matrix::zeros(dim, dim);
        let mut b = vec![0.0; dim];
        for (x, &y) in xs.iter().zip(ys) {
            assert_eq!(x.len(), dim);
            for i in 0..dim {
                b[i] += x[i] * y;
                for j in 0..dim {
                    gram[(i, j)] += x[i] * x[j];
                }
            }
        }
        let factors = LuFactors::factorize(&gram).ok()?;
        let p = factors.inverse().ok()?;
        let alpha = factors.solve(&b).ok()?;
        Some(RlsState {
            p,
            b,
            alpha,
            samples: xs.len(),
        })
    }

    /// Absorbs one `(x, y)` observation using equations (6)–(8).
    pub fn update(&mut self, x: &[f64], y: f64) {
        let dim = self.alpha.len();
        assert_eq!(x.len(), dim, "regressor dimension mismatch");
        // (6) b += x y.
        for (b, &xi) in self.b.iter_mut().zip(x) {
            *b += xi * y;
        }
        // (7) P -= P x (1 + xᵀ P x)⁻¹ xᵀ P.
        let px: Vec<f64> = (0..dim)
            .map(|i| (0..dim).map(|j| self.p[(i, j)] * x[j]).sum())
            .collect();
        let denom = 1.0 + x.iter().zip(&px).map(|(a, b)| a * b).sum::<f64>();
        for i in 0..dim {
            for j in 0..dim {
                let sub = px[i] * px[j] / denom;
                self.p[(i, j)] -= sub;
            }
        }
        // (8) α -= P (x xᵀ α − x y) = P x (xᵀ α − y).
        let resid = x.iter().zip(&self.alpha).map(|(a, b)| a * b).sum::<f64>() - y;
        let px_new: Vec<f64> = (0..dim)
            .map(|i| (0..dim).map(|j| self.p[(i, j)] * x[j]).sum())
            .collect();
        for (a, &p) in self.alpha.iter_mut().zip(&px_new) {
            *a -= p * resid;
        }
        self.samples += 1;
    }

    /// Current coefficient estimate.
    pub fn coefficients(&self) -> &[f64] {
        &self.alpha
    }

    /// Number of samples absorbed (batch + online).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The coefficients as a clustering feature.
    pub fn feature(&self) -> Feature {
        Feature::new(self.alpha.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ar::ArModel;

    fn regressors(series: &[f64], order: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in order..series.len() {
            xs.push((0..order).map(|i| series[t - 1 - i]).collect());
            ys.push(series[t]);
        }
        (xs, ys)
    }

    fn noisy_series(n: usize, alpha: f64, seed: u64) -> Vec<f64> {
        let mut xs = vec![1.0];
        let mut state = seed;
        for _ in 1..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let prev = *xs.last().unwrap();
            xs.push(alpha * prev + 0.3 * noise);
        }
        xs
    }

    #[test]
    fn batch_init_matches_armodel_fit() {
        let series = noisy_series(200, 0.6, 42);
        let (xs, ys) = regressors(&series, 2);
        let rls = RlsState::from_batch(&xs, &ys).unwrap();
        let ar = ArModel::fit(&series, 2).unwrap();
        for (a, b) in rls.coefficients().iter().zip(ar.coefficients()) {
            assert!((a - b).abs() < 1e-6, "rls {a} vs batch {b}");
        }
    }

    #[test]
    fn online_updates_track_batch_refit_exactly() {
        // Paper's claim in Appendix A: the recursion is exact.
        let series = noisy_series(300, 0.75, 7);
        let (xs, ys) = regressors(&series, 3);
        // Initialize from the first 50 equations, stream the rest.
        let mut rls = RlsState::from_batch(&xs[..50], &ys[..50]).unwrap();
        for (x, &y) in xs[50..].iter().zip(&ys[50..]) {
            rls.update(x, y);
        }
        let full = RlsState::from_batch(&xs, &ys).unwrap();
        for (a, b) in rls.coefficients().iter().zip(full.coefficients()) {
            assert!((a - b).abs() < 1e-6, "online {a} vs batch {b}");
        }
        assert_eq!(rls.samples(), xs.len());
    }

    #[test]
    fn large_covariance_start_converges() {
        let series = noisy_series(5000, 0.5, 99);
        let (xs, ys) = regressors(&series, 1);
        let mut rls = RlsState::new(1, 1e6);
        for (x, &y) in xs.iter().zip(&ys) {
            rls.update(x, y);
        }
        // Sampling error for n=5000 is ~0.012; allow 5 sigma.
        assert!(
            (rls.coefficients()[0] - 0.5).abs() < 0.07,
            "estimated {}",
            rls.coefficients()[0]
        );
    }

    #[test]
    fn feature_matches_coefficients() {
        let mut rls = RlsState::new(2, 1e6);
        rls.update(&[1.0, 0.0], 0.5);
        assert_eq!(rls.feature().components(), rls.coefficients());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn update_rejects_wrong_dim() {
        let mut rls = RlsState::new(2, 1e6);
        rls.update(&[1.0], 0.5);
    }

    #[test]
    fn singular_batch_returns_none() {
        // Two identical rank-1 regressors: Gram matrix is singular.
        let xs = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let ys = vec![1.0, 2.0];
        assert!(RlsState::from_batch(&xs, &ys).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn rls_equals_batch_on_random_data(
            data in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 20..60)
        ) {
            // Random 2-d regression: x = (a, b), y.
            let xs: Vec<Vec<f64>> = data.iter().map(|&(a, b, _)| vec![a, b]).collect();
            let ys: Vec<f64> = data.iter().map(|&(_, _, y)| y).collect();
            let Some(mut rls) = RlsState::from_batch(&xs[..10], &ys[..10]) else {
                return Ok(()); // degenerate prefix; skip
            };
            for (x, &y) in xs[10..].iter().zip(&ys[10..]) {
                rls.update(x, y);
            }
            let Some(full) = RlsState::from_batch(&xs, &ys) else {
                return Ok(());
            };
            for (a, b) in rls.coefficients().iter().zip(full.coefficients()) {
                prop_assert!((a - b).abs() < 1e-5, "online {} vs batch {}", a, b);
            }
        }
    }
}
