//! ARMA(p, q) estimation via the Hannan–Rissanen two-stage procedure.
//!
//! §2.2 frames the node models inside "the general ARIMA model \[which\]
//! captures the seasonal moving averages (MA) along with the daily up and
//! down trends (AR)". The experiments only exercise pure AR features, but a
//! production modelling layer needs the MA side too:
//!
//! ```text
//! x_t = α₁ x_{t-1} + … + α_p x_{t-p} + ε_t + θ₁ ε_{t-1} + … + θ_q ε_{t-q}
//! ```
//!
//! Hannan–Rissanen: (1) fit a long AR(m) model (m ≫ p+q) and take its
//! residuals as proxies for the unobservable innovations ε; (2) regress
//! `x_t` jointly on `p` lags of `x` and `q` lags of the proxy innovations.
//! Both stages are linear least squares, reusing the workspace's solvers.

use crate::ar::ArModel;
use elink_linalg::cholesky::CholeskyFactor;
use elink_linalg::lu::lu_solve;
use elink_linalg::Matrix;
use elink_metric::Feature;

/// An estimated ARMA(p, q) model.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmaModel {
    ar: Vec<f64>,
    ma: Vec<f64>,
    noise_variance: f64,
}

impl ArmaModel {
    /// Fits an ARMA(`p`, `q`) model with Hannan–Rissanen.
    ///
    /// The stage-1 AR order is `m = max(2(p+q), 8)`, clamped to what the
    /// series length permits. Returns `None` when the series is too short
    /// (fewer than `m + max(p, q) + p + q + 1` points) or degenerate.
    pub fn fit(series: &[f64], p: usize, q: usize) -> Option<ArmaModel> {
        assert!(p >= 1 || q >= 1, "ARMA needs at least one AR or MA term");
        let m = (2 * (p + q)).max(8);
        if series.len() < m + p.max(q) + p + q + 2 {
            return None;
        }
        // Stage 1: long AR to estimate innovations.
        let long_ar = ArModel::fit(series, m)?;
        let mut resid = vec![0.0; series.len()];
        for t in m..series.len() {
            let pred: f64 = (0..m)
                .map(|i| long_ar.coefficients()[i] * series[t - 1 - i])
                .sum();
            resid[t] = series[t] - pred;
        }
        // Stage 2: regress x_t on p lags of x and q lags of resid, over the
        // region where all regressors are defined (t ≥ m + max(p, q)).
        let start = m + p.max(q);
        let dim = p + q;
        let mut gram = Matrix::zeros(dim, dim);
        let mut b = vec![0.0; dim];
        let mut rows = 0usize;
        let mut reg = vec![0.0; dim];
        for t in start..series.len() {
            for (i, r) in reg.iter_mut().take(p).enumerate() {
                *r = series[t - 1 - i];
            }
            for (j, r) in reg.iter_mut().skip(p).take(q).enumerate() {
                *r = resid[t - 1 - j];
            }
            let y = series[t];
            for i in 0..dim {
                b[i] += reg[i] * y;
                for j in 0..dim {
                    gram[(i, j)] += reg[i] * reg[j];
                }
            }
            rows += 1;
        }
        if rows < dim {
            return None;
        }
        for i in 0..dim {
            gram[(i, i)] += 1e-9;
        }
        let coeffs = match CholeskyFactor::factorize(&gram) {
            Ok(f) => f.solve(&b).ok()?,
            Err(_) => lu_solve(&gram, &b).ok()?,
        };
        let (ar, ma) = coeffs.split_at(p);
        // Residual variance of the stage-2 fit.
        let mut ss = 0.0;
        for t in start..series.len() {
            let mut pred = 0.0;
            for (i, &a) in ar.iter().enumerate() {
                pred += a * series[t - 1 - i];
            }
            for (j, &th) in ma.iter().enumerate() {
                pred += th * resid[t - 1 - j];
            }
            let e = series[t] - pred;
            ss += e * e;
        }
        Some(ArmaModel {
            ar: ar.to_vec(),
            ma: ma.to_vec(),
            noise_variance: ss / rows as f64,
        })
    }

    /// AR coefficients `(α₁, …, α_p)`.
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// MA coefficients `(θ₁, …, θ_q)`.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// Estimated innovation variance.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// The clustering feature: AR coefficients followed by MA coefficients
    /// (the natural extension of §2.2's coefficient features).
    pub fn feature(&self) -> Feature {
        let mut c = self.ar.clone();
        c.extend_from_slice(&self.ma);
        Feature::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates an ARMA series with LCG innovations.
    fn synth_arma(ar: &[f64], ma: &[f64], n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let p = ar.len();
        let q = ma.len();
        let mut xs = vec![0.0; p.max(1)];
        let mut eps = vec![0.0; q.max(1).max(xs.len())];
        while xs.len() < n {
            let t = xs.len();
            let e = noise();
            let mut x = e;
            for (i, &a) in ar.iter().enumerate() {
                x += a * xs[t - 1 - i];
            }
            for (j, &th) in ma.iter().enumerate() {
                if t > j {
                    x += th * eps[eps.len() - 1 - j];
                }
            }
            xs.push(x);
            eps.push(e);
        }
        xs
    }

    #[test]
    fn recovers_arma_1_1() {
        let xs = synth_arma(&[0.6], &[0.4], 40_000, 42);
        let m = ArmaModel::fit(&xs, 1, 1).unwrap();
        assert!(
            (m.ar_coefficients()[0] - 0.6).abs() < 0.05,
            "ar {:?}",
            m.ar_coefficients()
        );
        assert!(
            (m.ma_coefficients()[0] - 0.4).abs() < 0.08,
            "ma {:?}",
            m.ma_coefficients()
        );
    }

    #[test]
    fn recovers_pure_ar_with_zero_ma() {
        let xs = synth_arma(&[0.7, 0.2], &[], 30_000, 7);
        let m = ArmaModel::fit(&xs, 2, 1).unwrap();
        assert!((m.ar_coefficients()[0] - 0.7).abs() < 0.06);
        assert!((m.ar_coefficients()[1] - 0.2).abs() < 0.06);
        assert!(m.ma_coefficients()[0].abs() < 0.1, "spurious MA term");
    }

    #[test]
    fn agrees_with_ar_model_on_pure_ar() {
        let xs = synth_arma(&[0.5], &[], 20_000, 9);
        let arma = ArmaModel::fit(&xs, 1, 1).unwrap();
        let ar = ArModel::fit(&xs, 1).unwrap();
        assert!(
            (arma.ar_coefficients()[0] - ar.coefficients()[0]).abs() < 0.05,
            "arma {} vs ar {}",
            arma.ar_coefficients()[0],
            ar.coefficients()[0]
        );
    }

    #[test]
    fn feature_concatenates_ar_and_ma() {
        let xs = synth_arma(&[0.5], &[0.3], 20_000, 3);
        let m = ArmaModel::fit(&xs, 1, 1).unwrap();
        let f = m.feature();
        assert_eq!(f.dim(), 2);
        assert_eq!(f.components()[0], m.ar_coefficients()[0]);
        assert_eq!(f.components()[1], m.ma_coefficients()[0]);
    }

    #[test]
    fn short_series_returns_none() {
        assert!(ArmaModel::fit(&[1.0; 10], 1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_orders_panic() {
        let _ = ArmaModel::fit(&[1.0; 100], 0, 0);
    }
}
