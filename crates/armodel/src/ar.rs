//! Batch AR(k) model fitting via least squares (§2.2).

use elink_linalg::cholesky::CholeskyFactor;
use elink_linalg::lu::lu_solve;
use elink_linalg::Matrix;
use elink_metric::Feature;

/// An order-`k` auto-regressive model
/// `x_t = α₁ x_{t-1} + … + α_k x_{t-k} + ε_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArModel {
    coefficients: Vec<f64>,
    /// Estimated white-noise variance of the residuals.
    noise_variance: f64,
}

impl ArModel {
    /// Fits an AR(`order`) model to `series` by minimizing least-squares
    /// error, i.e. solving the normal equations `(X Xᵀ) α = X y` (§2.2).
    ///
    /// A tiny ridge (`1e-9` on the diagonal) keeps the normal equations
    /// solvable for degenerate series (e.g. constant data). Returns `None`
    /// when the series is shorter than `order + 1` (no equations at all).
    ///
    /// ```
    /// // A noiseless AR(1) series with coefficient 0.9.
    /// let series: Vec<f64> = (0..40).map(|t| 0.9_f64.powi(t)).collect();
    /// let model = elink_armodel::ArModel::fit(&series, 1).unwrap();
    /// assert!((model.coefficients()[0] - 0.9).abs() < 1e-6);
    /// ```
    pub fn fit(series: &[f64], order: usize) -> Option<ArModel> {
        assert!(order >= 1, "AR order must be at least 1");
        if series.len() < order + 1 {
            return None;
        }
        let m = series.len() - order;
        // Accumulate A = Σ r rᵀ and b = Σ r y directly (avoids materializing
        // the m × k design matrix).
        let mut a = Matrix::zeros(order, order);
        let mut b = vec![0.0; order];
        for t in order..series.len() {
            let y = series[t];
            // Regressor r = (x_{t-1}, …, x_{t-k}).
            for i in 0..order {
                let ri = series[t - 1 - i];
                b[i] += ri * y;
                for j in 0..order {
                    a[(i, j)] += ri * series[t - 1 - j];
                }
            }
        }
        for i in 0..order {
            a[(i, i)] += 1e-9;
        }
        // Cholesky is the fast path (A is SPD up to degeneracy); LU with
        // pivoting is the fallback.
        let coefficients = match CholeskyFactor::factorize(&a) {
            Ok(f) => f.solve(&b).ok()?,
            Err(_) => lu_solve(&a, &b).ok()?,
        };
        // Residual variance.
        let mut ss = 0.0;
        for t in order..series.len() {
            let pred: f64 = (0..order)
                .map(|i| coefficients[i] * series[t - 1 - i])
                .sum();
            let e = series[t] - pred;
            ss += e * e;
        }
        Some(ArModel {
            coefficients,
            noise_variance: ss / m as f64,
        })
    }

    /// Creates a model from explicit coefficients (used by generators).
    pub fn from_coefficients(coefficients: Vec<f64>, noise_variance: f64) -> ArModel {
        ArModel {
            coefficients,
            noise_variance,
        }
    }

    /// The model order k.
    pub fn order(&self) -> usize {
        self.coefficients.len()
    }

    /// The AR coefficients `(α₁, …, α_k)`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Estimated residual variance.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// One-step-ahead prediction given the most recent `k` values ordered
    /// newest first: `history\[0\] = x_{t-1}`.
    pub fn predict(&self, history: &[f64]) -> f64 {
        assert!(history.len() >= self.order(), "insufficient history");
        self.coefficients
            .iter()
            .zip(history)
            .map(|(a, x)| a * x)
            .sum()
    }

    /// The clustering feature: the coefficient vector (§2.2).
    pub fn feature(&self) -> Feature {
        Feature::new(self.coefficients.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates a noiseless AR series from given coefficients.
    fn synth(coeffs: &[f64], n: usize, seed_vals: &[f64]) -> Vec<f64> {
        let k = coeffs.len();
        let mut xs = seed_vals.to_vec();
        assert!(xs.len() >= k);
        while xs.len() < n {
            let t = xs.len();
            let x: f64 = (0..k).map(|i| coeffs[i] * xs[t - 1 - i]).sum();
            xs.push(x);
        }
        xs
    }

    #[test]
    fn recovers_ar1_exactly_without_noise() {
        let xs = synth(&[0.9], 50, &[1.0]);
        let m = ArModel::fit(&xs, 1).unwrap();
        assert!((m.coefficients()[0] - 0.9).abs() < 1e-6);
        assert!(m.noise_variance() < 1e-12);
    }

    #[test]
    fn recovers_ar2_exactly_without_noise() {
        let xs = synth(&[0.5, 0.3], 80, &[1.0, 2.0]);
        let m = ArModel::fit(&xs, 2).unwrap();
        assert!((m.coefficients()[0] - 0.5).abs() < 1e-5);
        assert!((m.coefficients()[1] - 0.3).abs() < 1e-5);
    }

    #[test]
    fn recovers_ar1_with_noise_approximately() {
        // Deterministic pseudo-noise keeps the test reproducible.
        let mut xs = vec![1.0];
        let mut state = 12345u64;
        for _ in 1..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let prev = *xs.last().unwrap();
            xs.push(0.7 * prev + 0.1 * noise);
        }
        let m = ArModel::fit(&xs, 1).unwrap();
        assert!(
            (m.coefficients()[0] - 0.7).abs() < 0.05,
            "estimated {}",
            m.coefficients()[0]
        );
        assert!(m.noise_variance() > 0.0);
    }

    #[test]
    fn too_short_series_is_none() {
        assert!(ArModel::fit(&[1.0, 2.0], 2).is_none());
        assert!(ArModel::fit(&[1.0], 1).is_none());
    }

    #[test]
    fn constant_series_is_fit() {
        // Degenerate (rank-1) normal equations still solve via the ridge.
        let xs = vec![5.0; 30];
        let m = ArModel::fit(&xs, 2).unwrap();
        let pred = m.predict(&[5.0, 5.0]);
        assert!((pred - 5.0).abs() < 1e-3, "prediction {pred}");
    }

    #[test]
    fn predict_uses_newest_first_ordering() {
        let m = ArModel::from_coefficients(vec![1.0, 0.0], 0.0);
        // x_t = 1.0 * x_{t-1}; history = [x_{t-1}, x_{t-2}].
        assert_eq!(m.predict(&[3.0, 7.0]), 3.0);
    }

    #[test]
    fn feature_exposes_coefficients() {
        let m = ArModel::from_coefficients(vec![0.5, 0.25], 0.1);
        assert_eq!(m.feature().components(), &[0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "insufficient history")]
    fn predict_panics_on_short_history() {
        let m = ArModel::from_coefficients(vec![0.5, 0.25], 0.0);
        let _ = m.predict(&[1.0]);
    }
}
