//! Auto-regressive data models at sensor nodes (§2.2 and Appendix A).
//!
//! Each node regresses its raw time series into an AR(k) model; the model
//! coefficients form the node's clustering *feature*. This crate provides:
//!
//! * [`ArModel`] — batch least-squares fitting of AR(k) coefficients by
//!   solving the normal equations `X Xᵀ α = X y` (§2.2).
//! * [`RlsState`] — exact recursive least-squares online updates using the
//!   Sherman–Morrison identities of Appendix A (equations 6–8), so a node
//!   never refits from scratch when a measurement arrives.
//! * [`ArmaModel`] — ARMA(p, q) estimation (Hannan–Rissanen) for the MA
//!   side of §2.2's "general ARIMA model".
//! * [`TaoModel`] — the composite seasonal model used for the Tao data
//!   (§8.1): an AR(1) within-day coefficient updated per measurement plus an
//!   AR(3) over daily means updated once per day; its feature is the
//!   4-vector `(α₁, β₁, β₂, β₃)` with distance weights `(0.5, 0.3, 0.2,
//!   0.1)`.

// Every public item must carry a doc comment (simlint pub-doc-coverage
// enforces the same invariant pre-rustdoc).
#![warn(missing_docs)]

pub mod ar;
/// AR(p)/ARMA model representation and one-step prediction.
pub mod arma;
/// Recursive least-squares coefficient fitting.
pub mod rls;
/// TAO-style periodic signal generators for model-fit tests.
pub mod tao;

pub use ar::ArModel;
pub use arma::ArmaModel;
pub use rls::RlsState;
pub use tao::TaoModel;
