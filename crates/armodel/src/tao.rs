//! The composite Tao model of §8.1.
//!
//! "The temperatures within a day follow regular upward and downward trends,
//! i.e., AR(1), whereas the daily variations in mean were observed to follow
//! an AR(3). Hence, the temperature at every node is modelled as
//! `x_t = α₁ x_{t-1} + β₁ μ_{T-1} + β₂ μ_{T-2} + β₃ μ_{T-3} + ε_t`.
//! Coefficient α₁ is updated for every measurement whereas β's are updated
//! every day."
//!
//! A node's clustering feature is `(α₁, β₁, β₂, β₃)`, compared under the
//! weighted Euclidean metric with weights `(0.5, 0.3, 0.2, 0.1)`.

use crate::rls::RlsState;
use elink_metric::Feature;

/// Per-node Tao model state: an online AR(1) on raw measurements plus an
/// AR(3) on daily means, refreshed once per day.
#[derive(Debug, Clone)]
pub struct TaoModel {
    /// Online AR(1) state for the within-day coefficient α₁ (updated per
    /// measurement, eq. 6–8).
    alpha: RlsState,
    /// Online AR(3) state over daily means for (β₁, β₂, β₃).
    beta: RlsState,
    /// Most recent raw value (the AR(1) regressor).
    last_value: Option<f64>,
    /// Trailing daily means, newest last.
    daily_means: Vec<f64>,
    /// Accumulator for the current day.
    day_sum: f64,
    day_count: usize,
    /// Measurements per day (e.g. 144 for 10-minute data).
    day_len: usize,
}

impl TaoModel {
    /// Creates a model and warm-starts it by replaying `training` (e.g. "the
    /// previous month's data", §8.1).
    ///
    /// # Panics
    /// Panics if `day_len == 0`.
    pub fn train(training: &[f64], day_len: usize) -> TaoModel {
        assert!(day_len > 0, "day length must be positive");
        let mut model = TaoModel {
            alpha: RlsState::new(1, 1e6),
            beta: RlsState::new(3, 1e6),
            last_value: None,
            daily_means: Vec::new(),
            day_sum: 0.0,
            day_count: 0,
            day_len,
        };
        for &x in training {
            model.observe(x);
        }
        model
    }

    /// Absorbs one measurement: updates α₁ immediately and the β's when a
    /// day boundary is crossed.
    pub fn observe(&mut self, x: f64) {
        if let Some(prev) = self.last_value {
            self.alpha.update(&[prev], x);
        }
        self.last_value = Some(x);
        self.day_sum += x;
        self.day_count += 1;
        if self.day_count == self.day_len {
            let mean = self.day_sum / self.day_len as f64;
            self.day_sum = 0.0;
            self.day_count = 0;
            // AR(3) over daily means: regress today's mean on the previous
            // three (newest first), once at least 3 history points exist.
            if self.daily_means.len() >= 3 {
                let n = self.daily_means.len();
                let regressor = [
                    self.daily_means[n - 1],
                    self.daily_means[n - 2],
                    self.daily_means[n - 3],
                ];
                self.beta.update(&regressor, mean);
            }
            self.daily_means.push(mean);
        }
    }

    /// Current α₁ estimate.
    pub fn alpha1(&self) -> f64 {
        self.alpha.coefficients()[0]
    }

    /// Current (β₁, β₂, β₃) estimates.
    pub fn betas(&self) -> &[f64] {
        self.beta.coefficients()
    }

    /// Number of completed days.
    pub fn days_completed(&self) -> usize {
        self.daily_means.len()
    }

    /// The clustering feature `(α₁, β₁, β₂, β₃)`.
    pub fn feature(&self) -> Feature {
        let b = self.beta.coefficients();
        Feature::new(vec![self.alpha1(), b[0], b[1], b[2]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a deterministic diurnal series: sinusoid within the day plus a
    /// slowly drifting daily baseline.
    fn diurnal_series(days: usize, day_len: usize, base: f64, amp: f64) -> Vec<f64> {
        let mut xs = Vec::with_capacity(days * day_len);
        for d in 0..days {
            let daily_base = base + 0.05 * d as f64;
            for s in 0..day_len {
                let phase = 2.0 * std::f64::consts::PI * s as f64 / day_len as f64;
                xs.push(daily_base + amp * phase.sin());
            }
        }
        xs
    }

    #[test]
    fn training_completes_days() {
        let xs = diurnal_series(10, 24, 25.0, 1.0);
        let m = TaoModel::train(&xs, 24);
        assert_eq!(m.days_completed(), 10);
    }

    #[test]
    fn alpha_close_to_one_for_smooth_series() {
        // A smooth diurnal series is strongly autocorrelated at lag 1.
        let xs = diurnal_series(5, 144, 25.0, 1.0);
        let m = TaoModel::train(&xs, 144);
        assert!(
            (m.alpha1() - 1.0).abs() < 0.05,
            "alpha1 = {} not near 1",
            m.alpha1()
        );
    }

    #[test]
    fn feature_has_four_components() {
        let xs = diurnal_series(8, 24, 25.0, 0.5);
        let m = TaoModel::train(&xs, 24);
        assert_eq!(m.feature().dim(), 4);
        assert_eq!(m.feature().components()[0], m.alpha1());
    }

    #[test]
    fn betas_update_only_on_day_boundaries() {
        let xs = diurnal_series(6, 24, 25.0, 0.5);
        let mut m = TaoModel::train(&xs, 24);
        let betas_before = m.betas().to_vec();
        // Mid-day observations must not touch the betas.
        for _ in 0..10 {
            m.observe(25.0);
        }
        assert_eq!(m.betas(), betas_before.as_slice());
        // Completing the day updates them.
        for _ in 10..24 {
            m.observe(28.0);
        }
        assert_ne!(m.betas(), betas_before.as_slice());
    }

    #[test]
    fn similar_series_produce_close_features() {
        let a = TaoModel::train(&diurnal_series(10, 24, 25.0, 1.0), 24);
        let b = TaoModel::train(&diurnal_series(10, 24, 25.1, 1.0), 24);
        let c = TaoModel::train(&diurnal_series(10, 24, 10.0, 4.0), 24);
        let m = elink_metric::WeightedEuclidean::tao();
        use elink_metric::Metric;
        let d_ab = m.distance(&a.feature(), &b.feature());
        let d_ac = m.distance(&a.feature(), &c.feature());
        assert!(d_ab < d_ac, "similar pair {d_ab} vs dissimilar {d_ac}");
    }

    #[test]
    #[should_panic(expected = "day length")]
    fn zero_day_len_panics() {
        let _ = TaoModel::train(&[1.0], 0);
    }
}
