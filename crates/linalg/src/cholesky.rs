//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The AR normal equations `X Xᵀ α = X y` have an SPD left-hand side whenever
//! the regressors are not degenerate, so Cholesky is the natural (and
//! cheaper) solver; LU remains as the fallback for general systems.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a non-positive pivot
    /// appears (which also catches asymmetric inputs in practice).
    pub fn factorize(a: &Matrix) -> Result<CholeskyFactor> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky requires a square matrix",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Solves `A x = b` via forward/back substitution on `L`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky solve: rhs length != n",
            });
        }
        // L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            for j in 0..i {
                let sub = self.l[(i, j)] * y[j];
                y[i] -= sub;
            }
            y[i] /= self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = y;
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let sub = self.l[(j, i)] * x[j];
                x[i] -= sub;
            }
            x[i] /= self.l[(i, i)];
        }
        Ok(x)
    }

    /// Borrows the lower-triangular factor.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }
}

/// One-shot convenience: solve an SPD system `A x = b`.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    CholeskyFactor::factorize(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizes_known_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let f = CholeskyFactor::factorize(&a).unwrap();
        let l = f.lower();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = [1.0, -2.0, 3.0];
        let x_chol = cholesky_solve(&a, &b).unwrap();
        let x_lu = crate::lu::lu_solve(&a, &b).unwrap();
        for (c, l) in x_chol.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            CholeskyFactor::factorize(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square() {
        assert!(CholeskyFactor::factorize(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn l_lt_reconstructs_a() {
        let a = Matrix::from_rows(&[&[5.0, 1.0, 0.5], &[1.0, 4.0, 1.5], &[0.5, 1.5, 3.0]]);
        let f = CholeskyFactor::factorize(&a).unwrap();
        let rec = f.lower().matmul(&f.lower().transpose()).unwrap();
        assert!(rec.sub(&a).unwrap().frobenius_norm() < 1e-10);
    }
}
