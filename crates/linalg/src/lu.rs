//! LU factorization with partial pivoting, used to solve the AR normal
//! equations (§2.2) and to invert the small `P` matrices of the online RLS
//! updates (Appendix A).

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Packed LU factors of a square matrix with partial pivoting: `P A = L U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (below diagonal, unit diagonal implied) and U (diagonal and
    /// above) factors.
    lu: Matrix,
    /// Row permutation: row `i` of `LU` came from row `perm[i]` of `A`.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factorizes a square matrix.
    ///
    /// Returns [`LinalgError::Singular`] when a pivot smaller than `1e-12`
    /// (relative to the largest element) is encountered.
    pub fn factorize(a: &Matrix) -> Result<LuFactors> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "LU requires a square matrix",
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let scale = lu
            .as_slice()
            .iter()
            .fold(0.0_f64, |m, &x| m.max(x.abs()))
            .max(1.0);

        for col in 0..n {
            // Partial pivoting: pick the largest magnitude entry in column.
            let (pivot_row, pivot_val) =
                (col..n)
                    .map(|r| (r, lu[(r, col)].abs()))
                    .fold(
                        (col, -1.0),
                        |best, cur| if cur.1 > best.1 { cur } else { best },
                    );
            if pivot_val < 1e-12 * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                perm.swap(pivot_row, col);
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for j in (col + 1)..n {
                    let sub = factor * lu[(col, j)];
                    lu[(r, j)] -= sub;
                }
            }
        }
        Ok(LuFactors { lu, perm })
    }

    /// Solves `A x = b` using the precomputed factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "LU solve: rhs length != n",
            });
        }
        // Apply permutation, then forward substitution (L y = P b).
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for j in 0..i {
                y[i] -= self.lu[(i, j)] * y[j];
            }
        }
        // Back substitution (U x = y).
        let mut x = y;
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let sub = self.lu[(i, j)] * x[j];
                x[i] -= sub;
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` column by column. Only sensible for the small matrices
    /// used in AR fitting.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for (row, v) in x.into_iter().enumerate() {
                inv[(row, col)] = v;
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot convenience: solve `A x = b`.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactors::factorize(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero pivot in (0,0) forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(LuFactors::factorize(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(LuFactors::factorize(&a).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 1.0], &[2.0, 6.0, 0.5], &[1.0, 1.0, 3.0]]);
        let inv = LuFactors::factorize(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = prod.sub(&Matrix::identity(3)).unwrap().frobenius_norm();
        assert!(err < 1e-10, "A * A^-1 deviates from I by {err}");
    }

    #[test]
    fn solve_rejects_wrong_rhs_len() {
        let a = Matrix::identity(2);
        let f = LuFactors::factorize(&a).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn well_conditioned_matrix(n: usize) -> impl Strategy<Value = Matrix> {
        // Diagonally dominant matrices are always invertible.
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut data| {
            for i in 0..n {
                data[i * n + i] += (n as f64) + 1.0;
            }
            Matrix::from_vec(n, n, data).unwrap()
        })
    }

    proptest! {
        #[test]
        fn lu_solve_satisfies_system(
            a in well_conditioned_matrix(4),
            b in proptest::collection::vec(-10.0f64..10.0, 4)
        ) {
            let x = lu_solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (lhs, rhs) in ax.iter().zip(&b) {
                prop_assert!((lhs - rhs).abs() < 1e-8);
            }
        }
    }
}
