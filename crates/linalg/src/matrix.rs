//! Dense row-major matrix with the handful of operations the rest of the
//! workspace needs.

use crate::{LinalgError, Result};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// This is deliberately small: the AR models in the paper are order ≤ 4 and
/// the dense eigenproblems are only used for networks of a few hundred nodes,
/// so a straightforward `Vec<f64>` backing store is the right tool.
///
/// ```
/// use elink_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = elink_linalg::lu::lu_solve(&a, &[5.0, 11.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "from_vec: data length != rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices (handy in tests).
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the raw row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matmul: inner dimensions differ",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order keeps the inner loop contiguous in both `other`
        // and `out` (see perf-book guidance on cache-friendly traversal).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec: vector length != cols",
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Element-wise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "sub: shapes differ",
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert_eq!(id[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 4.25]]);
        let id = Matrix::identity(2);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn frobenius_norm_matches() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sub_and_scale() {
        let a = Matrix::from_rows(&[&[2.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut d = a.sub(&b).unwrap();
        assert_eq!(d, Matrix::from_rows(&[&[1.0, 3.0]]));
        d.scale_in_place(2.0);
        assert_eq!(d, Matrix::from_rows(&[&[2.0, 6.0]]));
    }
}
