//! Sparse symmetric matrices (CSR) and a block orthogonal-iteration
//! eigensolver for the top-k eigenpairs.
//!
//! The Death Valley experiments (Fig 9) run the centralized spectral baseline
//! on 2500-node networks; a dense Jacobi decomposition would be `O(n³)` per
//! sweep, so the spectral crate uses this sparse path instead: affinity
//! matrices only have entries on communication-graph edges, making a matvec
//! `O(E)`.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Symmetric sparse matrix in CSR form. Only used for matvec-driven
/// algorithms, so no general indexing is exposed.
#[derive(Debug, Clone)]
pub struct SymCsr {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SymCsr {
    /// Builds a symmetric CSR matrix from a list of `(i, j, v)` triplets.
    ///
    /// Every off-diagonal triplet should be supplied **once per direction**
    /// (i.e. both `(i,j,v)` and `(j,i,v)`), or use
    /// [`SymCsr::from_undirected_edges`] which mirrors automatically.
    /// Duplicate coordinates are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<SymCsr> {
        for &(i, j, _) in triplets {
            if i >= n || j >= n {
                return Err(LinalgError::DimensionMismatch {
                    context: "triplet index out of range",
                });
            }
        }
        let mut counts = vec![0usize; n + 1];
        for &(i, _, _) in triplets {
            counts[i + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let nnz = triplets.len();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut cursor = row_ptr.clone();
        for &(i, j, v) in triplets {
            let pos = cursor[i];
            col_idx[pos] = j;
            values[pos] = v;
            cursor[i] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut final_row_ptr = vec![0usize; n + 1];
        let mut final_cols = Vec::with_capacity(nnz);
        let mut final_vals = Vec::with_capacity(nnz);
        for i in 0..n {
            let lo = row_ptr[i];
            let hi = row_ptr[i + 1];
            let mut row: Vec<(usize, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(c, _)| c);
            for (c, v) in row {
                if let Some(last) = final_cols.last().copied() {
                    if final_cols.len() > final_row_ptr[i] && last == c {
                        *final_vals.last_mut().unwrap() += v;
                        continue;
                    }
                }
                final_cols.push(c);
                final_vals.push(v);
            }
            final_row_ptr[i + 1] = final_cols.len();
        }
        Ok(SymCsr {
            n,
            row_ptr: final_row_ptr,
            col_idx: final_cols,
            values: final_vals,
        })
    }

    /// Builds from undirected weighted edges plus optional diagonal entries:
    /// each `(i, j, w)` with `i != j` contributes both `(i,j)` and `(j,i)`.
    pub fn from_undirected_edges(
        n: usize,
        edges: &[(usize, usize, f64)],
        diagonal: &[f64],
    ) -> Result<SymCsr> {
        if !diagonal.is_empty() && diagonal.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "diagonal length must be 0 or n",
            });
        }
        let mut triplets = Vec::with_capacity(edges.len() * 2 + n);
        for &(i, j, w) in edges {
            if i == j {
                triplets.push((i, i, w));
            } else {
                triplets.push((i, j, w));
                triplets.push((j, i, w));
            }
        }
        for (i, &d) in diagonal.iter().enumerate() {
            if d != 0.0 {
                triplets.push((i, i, d));
            }
        }
        SymCsr::from_triplets(n, &triplets)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `out = A * v`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(v.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[idx] * v[self.col_idx[idx]];
            }
            *slot = acc;
        }
    }

    /// Allocating matvec.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.matvec_into(v, &mut out);
        out
    }

    /// Iterates over the `(col, value)` entries of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.row_ptr[i]..self.row_ptr[i + 1]).map(move |idx| (self.col_idx[idx], self.values[idx]))
    }
}

/// How many power/orthonormalize steps run between (expensive) Rayleigh–
/// Ritz extractions.
const RR_INTERVAL: usize = 8;

/// Computes the top-`k` eigenpairs (largest eigenvalues) of a symmetric
/// matrix via block orthogonal iteration with periodic Rayleigh–Ritz
/// extraction (every `RR_INTERVAL` power steps — the Ritz rotation is
/// `O(k²n + k³)` and would dominate if run per step).
///
/// Returns `(values, vectors)` where `values` is descending and `vectors` is
/// `n × k` with unit columns. Deterministic: the starting block is seeded
/// from `seed`. If the eigenvalues have not stabilized to `tol` within
/// `max_iters` power steps, the best Ritz approximation found is returned
/// (spectral clustering only needs an approximate invariant subspace; exact
/// convergence can be arbitrarily slow when eigenvalue gaps are tiny).
pub fn top_eigenvectors(
    a: &SymCsr,
    k: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Result<(Vec<f64>, Matrix)> {
    let n = a.n();
    if k == 0 || k > n {
        return Err(LinalgError::DimensionMismatch {
            context: "top_eigenvectors: k out of range",
        });
    }
    // Deterministic pseudo-random starting block (splitmix64 stream).
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) - 0.5
    };
    let mut block: Vec<Vec<f64>> = (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
    orthonormalize(&mut block);

    let mut prev_values = vec![f64::INFINITY; k];
    let mut last_values = prev_values.clone();
    let mut iter = 0;
    while iter < max_iters {
        // A batch of power steps: B <- orth(A * B), repeated.
        let steps = RR_INTERVAL.min(max_iters - iter).max(1);
        for _ in 0..steps {
            let mut new_block: Vec<Vec<f64>> = block.iter().map(|col| a.matvec(col)).collect();
            orthonormalize(&mut new_block);
            block = new_block;
        }
        iter += steps;

        // Rayleigh–Ritz on the k-dimensional subspace: S = Bᵀ A B.
        let ab: Vec<Vec<f64>> = block.iter().map(|col| a.matvec(col)).collect();
        let mut s = Matrix::zeros(k, k);
        for i in 0..k {
            for j in i..k {
                let v = dot(&block[i], &ab[j]);
                s[(i, j)] = v;
                s[(j, i)] = v;
            }
        }
        let small = crate::eigen::jacobi_eigen(&s, 1e-13, 100)?;

        // Rotate the block into the Ritz basis.
        let mut ritz: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        for (j, rcol) in ritz.iter_mut().enumerate() {
            for (i, bcol) in block.iter().enumerate() {
                let coeff = small.vectors[(i, j)];
                for (r, b) in rcol.iter_mut().zip(bcol) {
                    *r += coeff * b;
                }
            }
        }
        block = ritz;
        last_values = small.values.clone();

        let delta: f64 = last_values
            .iter()
            .zip(&prev_values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let scale = last_values.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        if delta <= tol * scale {
            break;
        }
        prev_values = last_values.clone();
    }
    let mut vectors = Matrix::zeros(n, k);
    for (j, col) in block.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            vectors[(i, j)] = v;
        }
    }
    Ok((last_values, vectors))
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Modified Gram–Schmidt orthonormalization of a set of column vectors.
/// Degenerate columns are replaced with unit basis vectors to keep the block
/// full rank.
fn orthonormalize(cols: &mut [Vec<f64>]) {
    let n = cols.first().map_or(0, |c| c.len());
    for j in 0..cols.len() {
        for i in 0..j {
            let proj = dot(&cols[j], &cols[i]);
            let (head, tail) = cols.split_at_mut(j);
            for (x, y) in tail[0].iter_mut().zip(&head[i]) {
                *x -= proj * y;
            }
        }
        let norm = dot(&cols[j], &cols[j]).sqrt();
        if norm < 1e-12 {
            // Replace with e_j to preserve rank; re-orthogonalize lazily.
            for (idx, x) in cols[j].iter_mut().enumerate() {
                *x = if idx == j % n { 1.0 } else { 0.0 };
            }
            for i in 0..j {
                let proj = dot(&cols[j], &cols[i]);
                let (head, tail) = cols.split_at_mut(j);
                for (x, y) in tail[0].iter_mut().zip(&head[i]) {
                    *x -= proj * y;
                }
            }
            let norm2 = dot(&cols[j], &cols[j]).sqrt().max(1e-12);
            for x in &mut cols[j] {
                *x /= norm2;
            }
        } else {
            for x in &mut cols[j] {
                *x /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_csr(d: &[f64]) -> SymCsr {
        let triplets: Vec<_> = d.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        SymCsr::from_triplets(d.len(), &triplets).unwrap()
    }

    #[test]
    fn matvec_diagonal() {
        let a = diag_csr(&[1.0, 2.0, 3.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_undirected_mirrors_edges() {
        let a = SymCsr::from_undirected_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)], &[]).unwrap();
        // Row 1 should see both neighbors.
        let entries: Vec<_> = a.row_entries(1).collect();
        assert_eq!(entries, vec![(0, 2.0), (2, 3.0)]);
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let a = SymCsr::from_triplets(2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let entries: Vec<_> = a.row_entries(0).collect();
        assert_eq!(entries, vec![(1, 3.0)]);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(SymCsr::from_triplets(2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn top_eigs_of_diagonal() {
        let a = diag_csr(&[5.0, 1.0, 4.0, 2.0]);
        let (vals, vecs) = top_eigenvectors(&a, 2, 500, 1e-12, 7).unwrap();
        assert!((vals[0] - 5.0).abs() < 1e-8);
        assert!((vals[1] - 4.0).abs() < 1e-8);
        // Eigenvector for λ=5 is e_0 up to sign.
        assert!(vecs[(0, 0)].abs() > 0.999);
        assert!(vecs[(2, 1)].abs() > 0.999);
    }

    #[test]
    fn matches_dense_jacobi_on_small_laplacian() {
        // 4-cycle graph Laplacian; eigenvalues {0, 2, 2, 4}.
        let edges = [
            (0usize, 1usize, -1.0),
            (1, 2, -1.0),
            (2, 3, -1.0),
            (3, 0, -1.0),
        ];
        let a = SymCsr::from_undirected_edges(4, &edges, &[2.0, 2.0, 2.0, 2.0]).unwrap();
        let (vals, _) = top_eigenvectors(&a, 2, 2000, 1e-12, 11).unwrap();
        assert!((vals[0] - 4.0).abs() < 1e-6, "got {vals:?}");
        assert!((vals[1] - 2.0).abs() < 1e-6, "got {vals:?}");
    }

    #[test]
    fn k_out_of_range_is_error() {
        let a = diag_csr(&[1.0, 2.0]);
        assert!(top_eigenvectors(&a, 0, 10, 1e-6, 1).is_err());
        assert!(top_eigenvectors(&a, 3, 10, 1e-6, 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = diag_csr(&[3.0, 1.0, 2.0, 0.5, 2.5]);
        let (v1, m1) = top_eigenvectors(&a, 3, 500, 1e-12, 42).unwrap();
        let (v2, m2) = top_eigenvectors(&a, 3, 500, 1e-12, 42).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(m1.as_slice(), m2.as_slice());
    }
}
