//! k-means clustering with k-means++ seeding (Lloyd's algorithm).
//!
//! This is the embedding-space clustering step of the Ng–Jordan–Weiss
//! spectral algorithm used by the paper's centralized baseline (§8.3, \[22\]).

use crate::matrix::Matrix;
use rand::Rng;
use rand::SeedableRng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `assignment[i]` is the cluster index (`0..k`) of point `i`.
    pub assignment: Vec<usize>,
    /// `k × dim` matrix of final centroids.
    pub centroids: Matrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Runs k-means on the rows of `points` (an `n × dim` matrix).
///
/// Seeding is k-means++; ties and randomness are controlled by `seed`, so
/// repeated calls are reproducible. Empty clusters are re-seeded with the
/// point farthest from its current centroid.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn kmeans(points: &Matrix, k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    let n = points.rows();
    let dim = points.cols();
    assert!(k >= 1, "kmeans: k must be >= 1");
    assert!(k <= n, "kmeans: k must be <= number of points");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut centroids = plus_plus_seeds(points, k, &mut rng);
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;

    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let p = points.row(i);
            let (best, _) = (0..k).map(|c| (c, sq_dist(p, centroids.row(c)))).fold(
                (0, f64::INFINITY),
                |acc, cur| if cur.1 < acc.1 { cur } else { acc },
            );
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for (i, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            for (s, &v) in sums.row_mut(c).iter_mut().zip(points.row(i)) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster with the worst-fitting point.
                let (far, _) = (0..n)
                    .map(|i| (i, sq_dist(points.row(i), centroids.row(assignment[i]))))
                    .fold((0, -1.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
                let src: Vec<f64> = points.row(far).to_vec();
                centroids.row_mut(c).copy_from_slice(&src);
                changed = true;
            } else {
                let inv = 1.0 / counts[c] as f64;
                let src: Vec<f64> = sums.row(c).iter().map(|&s| s * inv).collect();
                centroids.row_mut(c).copy_from_slice(&src);
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(assignment[i])))
        .sum();
    KMeansResult {
        assignment,
        centroids,
        inertia,
        iterations,
    }
}

/// k-means++ seeding: first centroid uniform, each next centroid sampled with
/// probability proportional to squared distance from the nearest chosen one.
fn plus_plus_seeds(points: &Matrix, k: usize, rng: &mut impl Rng) -> Matrix {
    let n = points.rows();
    let dim = points.cols();
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));

    let mut d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let row: Vec<f64> = points.row(pick).to_vec();
        centroids.row_mut(c).copy_from_slice(&row);
        for (i, best) in d2.iter_mut().enumerate() {
            let d = sq_dist(points.row(i), centroids.row(c));
            if d < *best {
                *best = d;
            }
        }
    }
    centroids
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        // Two tight clusters around (0,0) and (10,10).
        Matrix::from_rows(&[
            &[0.0, 0.1],
            &[0.1, -0.1],
            &[-0.1, 0.0],
            &[10.0, 10.1],
            &[10.1, 9.9],
            &[9.9, 10.0],
        ])
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmeans(&two_blobs(), 2, 100, 3);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert!(r.inertia < 0.2);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = Matrix::from_rows(&[&[0.0], &[5.0], &[9.0]]);
        let r = kmeans(&pts, 3, 50, 1);
        assert!(r.inertia < 1e-12);
        let mut sorted = r.assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = Matrix::from_rows(&[&[0.0, 0.0], &[2.0, 4.0]]);
        let r = kmeans(&pts, 1, 50, 5);
        assert!((r.centroids[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((r.centroids[(0, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 2, 100, 42);
        let b = kmeans(&pts, 2, 100, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    #[should_panic(expected = "k must be <= number of points")]
    fn panics_when_k_exceeds_n() {
        let pts = Matrix::from_rows(&[&[0.0]]);
        let _ = kmeans(&pts, 2, 10, 0);
    }
}
