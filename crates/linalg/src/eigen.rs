//! Dense symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used by the centralized spectral-clustering baseline (§8.3) for networks
//! small enough that a full `O(n³)` decomposition is practical (the Tao grid,
//! the synthetic networks up to 800 nodes). Larger networks use
//! [`crate::sparse::top_eigenvectors`].

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Eigenvalues and eigenvectors of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in **descending** order.
    pub values: Vec<f64>,
    /// `eigenvectors.row(i)` is not the eigenvector — column `j` of this
    /// matrix is the unit eigenvector for `values[j]`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Returns eigenvector `j` as an owned column vector.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        (0..self.vectors.rows())
            .map(|i| self.vectors[(i, j)])
            .collect()
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Sweeps over all off-diagonal pairs applying Givens rotations until the
/// off-diagonal Frobenius norm falls below `tol` (relative to the matrix
/// norm), or errors with [`LinalgError::NoConvergence`] after `max_sweeps`.
pub fn jacobi_eigen(a: &Matrix, tol: f64, max_sweeps: usize) -> Result<EigenDecomposition> {
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            context: "eigendecomposition requires a square matrix",
        });
    }
    if !a.is_symmetric(1e-9 * (1.0 + a.frobenius_norm())) {
        return Err(LinalgError::DimensionMismatch {
            context: "jacobi_eigen requires a symmetric matrix",
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut q = Matrix::identity(n);
    let norm = a.frobenius_norm().max(1e-300);

    for sweep in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if (2.0 * off).sqrt() <= tol * norm {
            return Ok(sort_descending(m, q));
        }
        let _ = sweep;
        for p in 0..n {
            for qi in (p + 1)..n {
                let apq = m[(p, qi)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(qi, qi)];
                // Standard stable rotation angle computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, qi)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, qi)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(qi, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(qi, k)] = s * mpk + c * mqk;
                }
                // Accumulate the eigenvector rotation.
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, qi)];
                    q[(k, p)] = c * qkp - s * qkq;
                    q[(k, qi)] = s * qkp + c * qkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: max_sweeps,
    })
}

/// Sorts (eigenvalue, eigenvector-column) pairs by descending eigenvalue.
fn sort_descending(m: Matrix, q: Matrix) -> EigenDecomposition {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| values_raw[b].partial_cmp(&values_raw[a]).unwrap());

    let values = order.iter().map(|&i| values_raw[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = q[(row, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decompose(a: &Matrix) -> EigenDecomposition {
        jacobi_eigen(a, 1e-12, 100).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = decompose(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = decompose(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = e.vector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 0.5],
            &[1.0, 3.0, 0.0, 1.5],
            &[-2.0, 0.0, 5.0, 1.0],
            &[0.5, 1.5, 1.0, 2.0],
        ]);
        let e = decompose(&a);
        // Rebuild A = V diag(λ) Vᵀ.
        let n = 4;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let rec = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(rec.sub(&a).unwrap().frobenius_norm() < 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let e = decompose(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().frobenius_norm() < 1e-8);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(jacobi_eigen(&a, 1e-10, 50).is_err());
    }

    #[test]
    fn path_graph_laplacian_eigenvalues() {
        // Laplacian of the path graph P3 has eigenvalues {0, 1, 3}.
        let l = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let e = decompose(&l);
        assert!((e.values[0] - 3.0).abs() < 1e-9);
        assert!((e.values[1] - 1.0).abs() < 1e-9);
        assert!(e.values[2].abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |data| {
            let raw = Matrix::from_vec(n, n, data).unwrap();
            let mut sym = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    sym[(i, j)] = 0.5 * (raw[(i, j)] + raw[(j, i)]);
                }
            }
            sym
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn jacobi_reconstructs(a in symmetric_matrix(5)) {
            let e = jacobi_eigen(&a, 1e-12, 200).unwrap();
            let n = a.rows();
            let mut lam = Matrix::zeros(n, n);
            for i in 0..n { lam[(i, i)] = e.values[i]; }
            let rec = e.vectors.matmul(&lam).unwrap()
                .matmul(&e.vectors.transpose()).unwrap();
            prop_assert!(rec.sub(&a).unwrap().frobenius_norm() < 1e-6);
            // Values must be sorted descending.
            for w in e.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-9);
            }
        }
    }
}
