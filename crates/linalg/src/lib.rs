//! Small, dependency-free dense and sparse linear algebra for the ELink
//! reproduction.
//!
//! The paper needs linear algebra in three places:
//!
//! * **AR(k) model fitting** (§2.2, Appendix A): solving the normal equations
//!   `X Xᵀ α = X y` — provided by [`Matrix`] together with [`lu::LuFactors`]
//!   and [`cholesky`].
//! * **Centralized spectral clustering** (§8.3): eigenvectors of a graph
//!   Laplacian — dense [`eigen::jacobi_eigen`] for small problems and sparse
//!   [`sparse::top_eigenvectors`] (block orthogonal iteration) for the
//!   2500-node Death Valley networks, plus [`mod@kmeans`] for the embedding step.
//! * **Feature arithmetic** throughout (vector helpers in [`vecops`]).
//!
//! Everything is implemented from scratch; no external BLAS.

// Every public item must carry a doc comment (simlint pub-doc-coverage
// enforces the same invariant pre-rustdoc).
#![warn(missing_docs)]

pub mod cholesky;
/// Symmetric eigensolvers (Jacobi, Lanczos).
pub mod eigen;
/// Seeded k-means over embedded points.
pub mod kmeans;
/// LU decomposition and linear solves.
pub mod lu;
/// Dense row-major matrix type.
pub mod matrix;
/// Compressed sparse-row matrices.
pub mod sparse;
/// Small vector helpers (dot, norm, axpy).
pub mod vecops;

pub use cholesky::cholesky_solve;
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use kmeans::{kmeans, KMeansResult};
pub use lu::LuFactors;
pub use matrix::Matrix;
pub use sparse::{top_eigenvectors, SymCsr};

/// Error type for linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions do not match the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized/solved.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for fallible linear-algebra results.
pub type Result<T> = std::result::Result<T, LinalgError>;
