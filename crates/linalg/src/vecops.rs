//! Small vector helpers shared across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (in debug builds) if lengths differ; in release the shorter length
/// wins, so callers should uphold the invariant.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `out += s * v` (axpy).
#[inline]
pub fn axpy(out: &mut [f64], s: f64, v: &[f64]) {
    debug_assert_eq!(out.len(), v.len());
    for (o, &x) in out.iter_mut().zip(v) {
        *o += s * x;
    }
}

/// Normalizes `v` to unit length in place; leaves zero vectors untouched and
/// returns the original norm.
pub fn normalize_in_place(v: &mut [f64]) -> f64 {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// Arithmetic mean of a slice; 0.0 for empty input.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population variance of a slice; 0.0 for fewer than 2 samples.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sq_dist_works() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, 2.0, &[3.0, 4.0]);
        assert_eq!(out, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_handles_zero() {
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize_in_place(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
        let mut v = vec![0.0, 2.0];
        assert_eq!(normalize_in_place(&mut v), 2.0);
        assert_eq!(v, vec![0.0, 1.0]);
    }

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
