//! End-to-end checks of the concrete scenarios: the real ELink growth and
//! workload serving protocols driven through the checker's schedules.

use elink_mc::scenarios::{elink_growth, serving};
use elink_mc::{FaultBudget, McConfig, Strategy};

#[test]
fn elink_growth_fault_free_is_exhaustive_and_clean() {
    let config = McConfig::fault_free(2);
    let outcome =
        elink_growth::three_node().check(&config, &elink_growth::predicates(&[]), Strategy::Bfs);
    let report = &outcome.report;
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
    assert!(report.exhaustive(), "exploration truncated: {report:?}");
    assert!(report.quiescent > 0, "no quiescent state reached");

    // Determinism: the same exploration twice returns identical counts.
    let again =
        elink_growth::three_node().check(&config, &elink_growth::predicates(&[]), Strategy::Bfs);
    assert_eq!(report.explored, again.report.explored);
    assert_eq!(report.pruned, again.report.pruned);
    assert_eq!(report.quiescent, again.report.quiescent);
}

#[test]
fn elink_growth_drop_deadlocks_and_counterexample_replays() {
    // One message loss without ARQ deadlocks the explicit-mode ack waves:
    // the checker must find a losing schedule and the compiled
    // counterexample must reproduce it under the production engine.
    let mut config = McConfig::fault_free(2);
    config.faults = FaultBudget {
        max_drops: 1,
        ..FaultBudget::default()
    };
    let outcome =
        elink_growth::three_node().check(&config, &elink_growth::predicates(&[]), Strategy::Bfs);
    let violation = outcome
        .report
        .violation
        .as_ref()
        .expect("a single drop must break growth");
    let (spec, replay) = outcome.counterexample.expect("violation compiles");
    assert!(
        replay.reproduced,
        "counterexample for '{}' did not reproduce: {:?} (schedule: {:#?})",
        violation.predicate, replay.message, spec.schedule
    );
    assert!(
        !replay.trace_jsonl.is_empty(),
        "replay must produce a JSONL trace"
    );
}

#[test]
fn serving_fault_free_is_exhaustive_and_clean() {
    let config = McConfig::fault_free(2);
    let outcome = serving::four_node().check(&config, &serving::predicates(), Strategy::Bfs);
    let report = &outcome.report;
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
    assert!(report.exhaustive(), "exploration truncated: {report:?}");
    assert!(report.quiescent > 0, "no quiescent state reached");
}

#[test]
fn serving_contended_is_exhaustive_and_clean() {
    // Two queries through a 1-scalar/tick FairShareLink: the flow table is
    // snapshotted into every explored state, completions fire as
    // exact-class events, and soundness must survive every contention
    // interleaving. Must also be byte-identically repeatable.
    let mut config = McConfig::fault_free(2);
    config.max_depth = 512;
    let scenario = serving::four_node_contended();
    assert_eq!(scenario.flow_capacity, Some(1));
    let outcome = scenario.check(&config, &serving::predicates(), Strategy::Bfs);
    let report = &outcome.report;
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
    assert!(report.exhaustive(), "exploration truncated: {report:?}");
    assert!(report.quiescent > 0, "no quiescent state reached");

    let again =
        serving::four_node_contended().check(&config, &serving::predicates(), Strategy::Bfs);
    assert_eq!(report.explored, again.report.explored);
    assert_eq!(report.quiescent, again.report.quiescent);
}

#[test]
#[should_panic(expected = "must be fault-free")]
fn serving_contended_rejects_fault_budgets() {
    let mut config = McConfig::fault_free(2);
    config.faults = FaultBudget {
        max_drops: 1,
        ..FaultBudget::default()
    };
    let _ = serving::four_node_contended().check(&config, &serving::predicates(), Strategy::Bfs);
}

#[test]
fn serving_survives_one_crash_exhaustively() {
    // The recovery layer's contract: under any single crash at any point,
    // every surviving initiator still gets a sound answer, caches stay
    // exact, and the M-tree covering invariant holds.
    let mut config = McConfig::fault_free(2);
    config.faults = FaultBudget {
        max_crashes: 1,
        ..FaultBudget::default()
    };
    config.max_depth = 512;
    config.max_states = 4_000_000;
    let outcome = serving::four_node().check(&config, &serving::predicates(), Strategy::Dfs);
    let report = &outcome.report;
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
    assert!(report.exhaustive(), "exploration truncated: {report:?}");
}
