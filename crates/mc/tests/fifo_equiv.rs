//! Cross-validation: the checker's FIFO-sequential schedule *is* the
//! production engine's schedule.
//!
//! [`McSystem::run_fifo`] always dispatches the globally least pending
//! event by engine pop order, fault-free, at its exact tick — which must be
//! byte-identical to `Simulator::run_to_completion` on the same
//! construction (same topology, features, link, seed, ARQ config). These
//! property tests diff the full `JsonlTrace` byte stream, the `CostBook`,
//! and the extracted clustering across random topologies, signalling
//! modes, lossy links and the ARQ reliable-delivery sublayer. Any
//! divergence means the capture seam is not the engine's own dispatch —
//! the soundness root of every other checker result.

use std::sync::{Arc, Mutex};

use elink_core::{build_sim, Clustering, ElinkConfig, SignalMode};
use elink_mc::McSystem;
use elink_metric::{Absolute, Feature};
use elink_netsim::{
    ArqConfig, CostBook, DelayModel, JsonlTrace, LinkModel, LossyLink, SimNetwork, Simulator,
};
use elink_topology::Topology;
use proptest::prelude::*;

/// Everything observable about one run.
struct RunView {
    trace: Vec<u8>,
    costs: CostBook,
    assignment: Vec<usize>,
    roots: Vec<usize>,
}

/// A byte-buffer-backed trace sink shared with the simulator.
type SharedTrace = Arc<Mutex<JsonlTrace<Vec<u8>>>>;

/// Builds the traced simulator for one case; both schedules must construct
/// identically (same seed ⇒ same RNG stream) for the diff to be meaningful.
fn build_traced(
    topology: &Topology,
    features: &[Feature],
    config: ElinkConfig,
    mode: SignalMode,
    link: Box<dyn LinkModel>,
    seed: u64,
    arq: Option<ArqConfig>,
) -> (Simulator<elink_core::ElinkNode>, SharedTrace) {
    let network = SimNetwork::new(topology.clone());
    let mut sim = build_sim(
        &network,
        features,
        Arc::new(Absolute),
        config,
        mode,
        link,
        seed,
    );
    let sink = Arc::new(Mutex::new(JsonlTrace::new(Vec::<u8>::new())));
    sim.set_trace(Arc::clone(&sink));
    if let Some(arq_config) = arq {
        sim.enable_arq(arq_config);
    }
    (sim, sink)
}

/// Extracts the observable view after a completed run.
fn view(
    sim: Simulator<elink_core::ElinkNode>,
    sink: Arc<Mutex<JsonlTrace<Vec<u8>>>>,
    topology: &Topology,
) -> RunView {
    let states: Vec<_> = sim
        .nodes()
        .iter()
        .enumerate()
        .map(|(id, node)| node.cluster_state(id))
        .collect();
    let clustering = Clustering::from_node_states(&states, topology, &Absolute);
    let costs = sim.costs().clone();
    drop(sim);
    let trace = Arc::try_unwrap(sink)
        .expect("simulator dropped its trace handle")
        .into_inner()
        .unwrap()
        .into_inner();
    RunView {
        trace,
        costs,
        roots: clustering.clusters.iter().map(|c| c.root).collect(),
        assignment: clustering.assignment,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    topology: &Topology,
    features: &[Feature],
    config: ElinkConfig,
    mode: SignalMode,
    link: impl Fn() -> Box<dyn LinkModel>,
    seed: u64,
    arq: Option<ArqConfig>,
    label: &str,
) -> Result<(), TestCaseError> {
    let (mut engine_sim, engine_sink) =
        build_traced(topology, features, config, mode, link(), seed, arq);
    engine_sim.run_to_completion();
    let engine = view(engine_sim, engine_sink, topology);

    let (fifo_sim, fifo_sink) = build_traced(topology, features, config, mode, link(), seed, arq);
    let fifo = view(
        McSystem::new(fifo_sim, Vec::new()).run_fifo(2_000_000),
        fifo_sink,
        topology,
    );

    if engine.trace != fifo.trace {
        let a = String::from_utf8_lossy(&engine.trace);
        let b = String::from_utf8_lossy(&fifo.trace);
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            prop_assert_eq!(la, lb, "{}: trace line {} diverges", label, i);
        }
        prop_assert_eq!(
            a.lines().count(),
            b.lines().count(),
            "{}: trace lengths diverge",
            label
        );
    }
    prop_assert_eq!(&engine.costs, &fifo.costs, "{}: cost books diverge", label);
    prop_assert_eq!(
        &engine.assignment,
        &fifo.assignment,
        "{}: assignments diverge",
        label
    );
    prop_assert_eq!(&engine.roots, &fifo.roots, "{}: roots diverge", label);
    Ok(())
}

fn synthetic_features(n: usize, seed: u64, scale: f64) -> Vec<Feature> {
    (0..n)
        .map(|v| {
            let h = (v as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            let x = (h >> 11) as f64 / (1u64 << 53) as f64;
            Feature::scalar(x * scale)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Loss-free: random topology, δ, mode, sync/async delays.
    #[test]
    fn fifo_matches_engine_loss_free(
        n in 6usize..32,
        topo_seed in 0u64..200,
        delta_frac in 0.1f64..1.0,
        seed in 0u64..64,
        mode_pick in 0usize..3,
        sync in proptest::bool::weighted(0.5),
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let scale = 100.0;
        let features = synthetic_features(n, topo_seed, scale);
        let config = ElinkConfig::for_delta((scale * delta_frac).max(1e-6));
        let mode = [SignalMode::Implicit, SignalMode::Explicit, SignalMode::Unordered][mode_pick];
        // Implicit mode assumes a synchronous network.
        let delay = if sync || mode == SignalMode::Implicit {
            DelayModel::Sync
        } else {
            DelayModel::Async { min: 1, max: 4 }
        };
        run_case(&topology, &features, config, mode, || delay.into(), seed, None, "loss-free")?;
    }

    /// Lossy link + ARQ: retransmission timers, acks and dedup state all
    /// flow through the capture seam; the schedules must still agree on
    /// every traced event and every billed byte.
    #[test]
    fn fifo_matches_engine_under_loss_with_arq(
        n in 6usize..24,
        topo_seed in 0u64..150,
        delta_frac in 0.2f64..1.0,
        seed in 0u64..64,
        drop_centi in 5u32..25,
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let scale = 100.0;
        let features = synthetic_features(n, topo_seed, scale);
        let config = ElinkConfig::for_delta((scale * delta_frac).max(1e-6));
        let drop = f64::from(drop_centi) / 100.0;
        run_case(
            &topology,
            &features,
            config,
            SignalMode::Explicit,
            || Box::new(LossyLink::new(1, 3).with_drop_prob(drop)),
            seed,
            Some(ArqConfig::default()),
            "lossy+arq",
        )?;
    }
}
