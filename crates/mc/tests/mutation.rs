//! Mutation smoke test: the checker must *catch* a seeded protocol bug.
//!
//! The mutation hooks out the covering-radius inflation on failover
//! adoption (`SKIP_ADOPT_RADIUS_INFLATION` in the workload crate): when a
//! takeover successor adopts a reattached child, it silently skips growing
//! its own M-tree covering radius to span the adopted subtree. A fault-free
//! run never notices — the bug is only reachable through the crash-recovery
//! path — so this is exactly the kind of defect schedule exploration exists
//! for. The `mtree-covering` invariant must fire, with a counterexample
//! that replays to the same violation under the production engine.
//!
//! Kept in its own test binary: the hook is a process-global static, and a
//! sibling test exploring the healthy protocol in parallel would race it.

use std::sync::atomic::Ordering;

use elink_mc::scenarios::serving;
use elink_mc::{FaultBudget, McConfig, Strategy};
use elink_workload::protocol::SKIP_ADOPT_RADIUS_INFLATION;

/// Clears the mutation on drop so a panicking assertion cannot leak the
/// broken protocol into any future test added to this binary.
struct MutationGuard;

impl Drop for MutationGuard {
    fn drop(&mut self) {
        SKIP_ADOPT_RADIUS_INFLATION.store(false, Ordering::Relaxed);
    }
}

#[test]
fn checker_catches_skipped_adoption_radius_inflation() {
    SKIP_ADOPT_RADIUS_INFLATION.store(true, Ordering::Relaxed);
    let _guard = MutationGuard;

    let mut config = McConfig::fault_free(2);
    config.faults = FaultBudget {
        max_crashes: 1,
        ..FaultBudget::default()
    };
    config.max_depth = 512;
    config.max_states = 4_000_000;
    let outcome = serving::four_node().check(&config, &serving::predicates(), Strategy::Bfs);

    let violation = outcome
        .report
        .violation
        .as_ref()
        .expect("the mutated protocol must violate an invariant");
    assert_eq!(
        violation.predicate, "mtree-covering",
        "wrong predicate caught the mutation: {violation:?}"
    );

    // BFS counterexamples are length-minimal; the shortest path to the bug
    // needs the crash plus the takeover/adopt exchange on top of the
    // fault-free spine, and must reproduce under the production engine.
    let (spec, replay) = outcome.counterexample.expect("violation compiles");
    assert!(
        replay.reproduced,
        "counterexample did not reproduce: {:?} (schedule: {:#?})",
        replay.message, spec.schedule
    );
    assert!(
        !replay.trace_jsonl.is_empty(),
        "replay must produce a JSONL trace"
    );
    assert!(
        violation.path.len() >= 3,
        "suspiciously short counterexample: {:?}",
        violation.path
    );
}
