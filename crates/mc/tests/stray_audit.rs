//! The let-else silent-drop audit for `elink_core::protocol`.
//!
//! Every `let … else { return }` drop path in the growth protocol is now a
//! named [`elink_core::stray`] site. These tests pin the audited behaviour
//! of the mc-reachable ones:
//!
//! * **`phase1-after-complete`** — a Phase1 redelivered after its
//!   `(cell, level)` wave completed is *absorbed* by the `phase1_done`
//!   dedup guard: the stray is recorded, no counter re-opens, no messages
//!   emit, and the clustering stands.
//! * **`ack1-unknown-root` / `ack2-unknown-root`** — acks for a cluster
//!   the receiver never joined are recorded and dropped without emitting.
//! * **Mid-wave ack duplication** — deliberately *not* tolerated (duplicate
//!   suppression is ARQ's job): the checker proves a single duplicated
//!   message can deadlock explicit-mode growth, and the compiled
//!   counterexample reproduces under the production engine.
//!
//! The fault-free side (no site fires at all) is pinned by the scenario
//! suite's `no-unexpected-strays` invariant with an empty allow list.

use std::sync::Arc;

use elink_core::{build_sim, stray, ElinkConfig, ElinkMsg, ElinkNode, SignalMode};
use elink_mc::scenarios::elink_growth;
use elink_mc::{FaultBudget, McConfig, Strategy};
use elink_metric::{Absolute, Feature};
use elink_netsim::{McEvent, ScriptedLink, SimNetwork, Simulator};
use elink_topology::Topology;

/// Every named drop site: the allow list for fault-injected exploration
/// (faults make each of these legitimately reachable; the audit is that
/// nothing *outside* this list ever fires).
const ALL_SITES: &[&str] = &[
    stray::SITE_SENTINEL_NOT_LEADER,
    stray::SITE_PHASE1_NOT_LEADER,
    stray::SITE_PHASE2_NOT_LEADER,
    stray::SITE_START_NOT_LEADER,
    stray::SITE_PHASE1_AFTER_COMPLETE,
    stray::SITE_ACK1_UNKNOWN_ROOT,
    stray::SITE_ACK2_UNKNOWN_ROOT,
    stray::SITE_COMPLETION_UNKNOWN_ROOT,
];

/// Drives the scenario simulator through the capture seam on the engine's
/// own FIFO order, returning the completed sim, every Phase1 delivery seen,
/// and the quiescence time.
fn run_growth_collecting_phase1() -> (Simulator<ElinkNode>, Vec<McEvent<ElinkMsg>>, u64) {
    let features = vec![
        Feature::scalar(0.0),
        Feature::scalar(4.0),
        Feature::scalar(100.0),
    ];
    let mut sim = build_sim(
        &SimNetwork::new(Topology::grid(1, 3)),
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(elink_growth::DELTA),
        SignalMode::Explicit,
        ScriptedLink::pristine(2),
        11,
    );
    let mut queue: Vec<(u64, McEvent<ElinkMsg>)> = Vec::new();
    let mut seq = 0u64;
    for ev in sim.capture_boot() {
        queue.push((seq, ev));
        seq += 1;
    }
    let mut phase1 = Vec::new();
    let mut end = 0u64;
    while let Some(i) = (0..queue.len()).min_by_key(|&i| (queue[i].1.time(), queue[i].0)) {
        let (_, ev) = queue.remove(i);
        end = end.max(ev.time());
        if matches!(ev.message(), Some(ElinkMsg::Phase1 { .. })) {
            phase1.push(ev.clone());
        }
        for out in sim.capture_dispatch(ev.time(), &ev) {
            queue.push((seq, out));
            seq += 1;
        }
    }
    (sim, phase1, end)
}

fn assignments(sim: &Simulator<ElinkNode>) -> Vec<(bool, usize)> {
    sim.nodes()
        .iter()
        .enumerate()
        .map(|(id, n)| (n.clustered, n.cluster_state(id).0))
        .collect()
}

#[test]
fn clean_growth_fires_no_drop_site() {
    let (sim, phase1, _) = run_growth_collecting_phase1();
    assert!(!phase1.is_empty(), "explicit growth must run phase-1 waves");
    for (id, node) in sim.nodes().iter().enumerate() {
        assert!(
            node.stray_drops.is_empty(),
            "node {id} hit drop sites on a clean run: {:?}",
            node.stray_drops
        );
    }
}

#[test]
fn duplicate_phase1_after_completion_is_absorbed() {
    let (mut sim, phase1, end) = run_growth_collecting_phase1();
    let before = assignments(&sim);
    let settled: Vec<usize> = sim
        .nodes()
        .iter()
        .map(ElinkNode::unsettled_subtrees)
        .collect();
    for ev in &phase1 {
        let harvested = sim.capture_dispatch(end + 1, ev);
        assert!(
            harvested.is_empty(),
            "redelivered Phase1 must be absorbed, emitted {} event(s)",
            harvested.len()
        );
        assert!(
            sim.nodes()[ev.node()]
                .stray_drops
                .contains(&stray::SITE_PHASE1_AFTER_COMPLETE),
            "phase1_done guard did not record the dedup"
        );
    }
    assert_eq!(before, assignments(&sim), "clustering changed");
    let after: Vec<usize> = sim
        .nodes()
        .iter()
        .map(ElinkNode::unsettled_subtrees)
        .collect();
    assert_eq!(settled, after, "a completed wave re-opened");
}

#[test]
fn acks_for_unknown_roots_are_recorded_and_dropped() {
    let (mut sim, _, end) = run_growth_collecting_phase1();
    let before = assignments(&sim);
    // Node 2 (feature 100) never joined cluster 0; both ack classes must
    // hit their unknown-root site without emitting anything.
    let ack1 = McEvent::external(end + 1, 2, ElinkMsg::Ack1 { root: 0 });
    assert!(sim.capture_dispatch(end + 1, &ack1).is_empty());
    let ack2 = McEvent::external(end + 2, 2, ElinkMsg::Ack2 { root: 0 });
    assert!(sim.capture_dispatch(end + 2, &ack2).is_empty());
    let strays = &sim.nodes()[2].stray_drops;
    assert!(
        strays.contains(&stray::SITE_ACK1_UNKNOWN_ROOT),
        "{strays:?}"
    );
    assert!(
        strays.contains(&stray::SITE_ACK2_UNKNOWN_ROOT),
        "{strays:?}"
    );
    assert_eq!(before, assignments(&sim), "stray acks mutated state");
}

#[test]
fn one_duplicated_message_can_deadlock_growth() {
    // The ack counters tolerate no duplicates by design — suppression is
    // the reliable transport's job. The checker must find a duplication
    // schedule that stalls growth, every stray fired along the way must be
    // a named (allowed) site, and the counterexample must replay.
    let mut config = McConfig::fault_free(2);
    config.faults = FaultBudget {
        max_duplicates: 1,
        ..FaultBudget::default()
    };
    let outcome = elink_growth::three_node().check(
        &config,
        &elink_growth::predicates(ALL_SITES),
        Strategy::Bfs,
    );
    let violation = outcome
        .report
        .violation
        .as_ref()
        .expect("a duplicated message must break unprotected growth");
    assert_ne!(
        violation.predicate, "no-unexpected-strays",
        "an unaudited drop site fired: {violation:?}"
    );
    let (_, replay) = outcome.counterexample.expect("violation compiles");
    assert!(
        replay.reproduced,
        "counterexample did not reproduce: {:?}",
        replay.message
    );
}
