//! DFS/BFS exploration with fingerprint pruning.
//!
//! The explorer walks the schedule graph defined by
//! [`McSystem::transitions`], checking invariants after every edge and
//! goals at quiescent states, pruning states whose fingerprint was seen
//! before, and truncating paths at the depth/state budgets. BFS finds a
//! *minimal* (fewest-transitions) counterexample; DFS uses less memory on
//! deep graphs. Everything is deterministic: transition enumeration order,
//! queue discipline, and fingerprints contain no addresses or RNG.

use std::collections::{HashSet, VecDeque};
use std::fmt::Debug;

use elink_netsim::{Canonicalize, Protocol};

use crate::predicates::{McView, Predicate};
use crate::system::{McConfig, McState, McSystem, Transition};

/// Exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: low memory, counterexamples not length-minimal.
    Dfs,
    /// Breadth-first: counterexamples have the fewest transitions.
    Bfs,
}

/// A predicate violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// Name of the violated predicate.
    pub predicate: String,
    /// The predicate's message at the violating state.
    pub message: String,
    /// Transition sequence from the initial state to the violation.
    pub path: Vec<Transition>,
    /// `path.len()`.
    pub depth: usize,
}

/// What an exploration saw.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// States expanded (transition enumeration ran).
    pub explored: u64,
    /// Successor states skipped because their fingerprint was seen.
    pub pruned: u64,
    /// Distinct quiescent states reached.
    pub quiescent: u64,
    /// Paths truncated at `max_depth` before quiescing.
    pub truncated_depth: u64,
    /// True if the `max_states` budget stopped the exploration early — the
    /// pass was *not* exhaustive.
    pub truncated_states: bool,
    /// Non-quiescent states with no enabled transition. Always zero if the
    /// schedule model is sound; reported so a gate can assert it.
    pub stuck: u64,
    /// Deepest path expanded.
    pub max_depth_seen: usize,
    /// First violation found (BFS: minimal), if any.
    pub violation: Option<ViolationReport>,
}

impl ExploreReport {
    /// Exhaustive under the budgets: every reachable state (mod
    /// fingerprint merging) within the depth bound was visited.
    pub fn exhaustive(&self) -> bool {
        !self.truncated_states && self.truncated_depth == 0 && self.stuck == 0
    }
}

fn check_state<P: Protocol>(
    s: &McState<P>,
    predicates: &[Box<dyn Predicate<P>>],
    path: &[Transition],
) -> Option<ViolationReport> {
    let view = McView {
        nodes: &s.nodes,
        crashed: &s.crashed,
        now: s.now,
        pending: s.pending_len(),
        quiescent: s.quiescent(),
    };
    for p in predicates {
        if p.quiescent_only() && !view.quiescent {
            continue;
        }
        if let Err(message) = p.check(&view) {
            return Some(ViolationReport {
                predicate: p.name().to_string(),
                message,
                path: path.to_vec(),
                depth: path.len(),
            });
        }
    }
    None
}

/// Explores the schedule graph of `sys` under `config`, evaluating
/// `predicates`, and returns what it saw. Stops at the first violation.
///
/// # Panics
/// Panics if the system is not explorable (non-deterministic link, ARQ
/// enabled, or a delay-bound mismatch) — see
/// [`McSystem::assert_explorable`].
pub fn explore<P>(
    sys: &mut McSystem<P>,
    config: &McConfig,
    predicates: &[Box<dyn Predicate<P>>],
    strategy: Strategy,
) -> ExploreReport
where
    P: Protocol + Clone + Canonicalize,
    P::Msg: Clone + Debug,
{
    sys.assert_explorable(config);
    let mut report = ExploreReport::default();
    let init = sys.init_state();
    if let Some(v) = check_state(&init, predicates, &[]) {
        report.violation = Some(v);
        return report;
    }
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(sys.fingerprint(&init));
    // DFS pops from the back, BFS from the front, of one deque.
    let mut frontier: VecDeque<(McState<P>, Vec<Transition>)> = VecDeque::new();
    frontier.push_back((init, Vec::new()));

    while let Some((state, path)) = match strategy {
        Strategy::Dfs => frontier.pop_back(),
        Strategy::Bfs => frontier.pop_front(),
    } {
        if report.explored >= config.max_states {
            report.truncated_states = true;
            break;
        }
        report.explored += 1;
        report.max_depth_seen = report.max_depth_seen.max(path.len());
        if state.quiescent() {
            report.quiescent += 1;
            continue;
        }
        if path.len() >= config.max_depth {
            report.truncated_depth += 1;
            continue;
        }
        let transitions = sys.transitions(&state, config);
        if transitions.is_empty() {
            report.stuck += 1;
            continue;
        }
        for tr in transitions {
            let next = sys.apply(&state, tr);
            let mut next_path = path.clone();
            next_path.push(tr);
            if let Some(v) = check_state(&next, predicates, &next_path) {
                report.violation = Some(v);
                return report;
            }
            if seen.insert(sys.fingerprint(&next)) {
                frontier.push_back((next, next_path));
            } else {
                report.pruned += 1;
            }
        }
    }
    report
}
