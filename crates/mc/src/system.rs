//! The virtual network: checker state, realizable transitions, fingerprints.
//!
//! A [`McState`] is one vertex of the schedule graph: protocol node states,
//! the in-flight event multiset, the crashed set, the clock, and the fault
//! budget spent so far. [`McSystem`] knows how to enumerate the *realizable*
//! transitions out of a state and to apply one by running the real handler
//! through the engine's capture seam.
//!
//! # The realizable time model
//!
//! The engine delivers a hop after a delay in `[1, D]` (`D` =
//! `max_hop_delay`) and fires timers at exact ticks, popping same-tick
//! events in insertion order. The checker mirrors that exactly:
//!
//! * **Windowed events** (network messages, `from ≠ node`): captured with
//!   all-ones hop delays, so an event born at `sent` arrives earliest at
//!   `ev.time = sent + hops`; stretching one hop to `D` bounds arrival by
//!   `deadline = ev.time + D − 1`. A delivery may be scheduled at any tick
//!   in that window.
//! * **Exact events** (timers, ARQ timeouts, self-deliveries, externals):
//!   fire at exactly `ev.time`, in engine pop order — the checker never
//!   reorders them against each other.
//! * **Same-tick order**: the engine pops a tick in insertion order
//!   (pre-run injections first, then mid-run pushes in push order). The
//!   checker assigns monotone sequence numbers at harvest — push order —
//!   and only allows a same-tick dispatch whose seq exceeds the previously
//!   dispatched one, so every explored tick ordering is the engine's own.
//!
//! Dispatch always happens at the *earliest* time consistent with the
//! chosen order (canonical timing): the state space enumerates orders, not
//! clock readings. Some engine-realizable same-tick interleavings are
//! thereby excluded by construction (they are engine-deterministic for a
//! fixed delay assignment); see DESIGN.md §12 for the argument.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::fmt::Write as _;

use elink_netsim::{fnv1a, Canonicalize, FlowsSnapshot, McEvent, Protocol, SimTime, Simulator};

/// How many faults of each class the explorer may inject along one path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultBudget {
    /// Message deliveries the network may lose.
    pub max_drops: u32,
    /// Messages the network may deliver twice.
    pub max_duplicates: u32,
    /// Nodes that may crash (permanently) before or after a handler.
    pub max_crashes: u32,
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// The link delay bound `D`; must equal the capture link's
    /// `max_hop_delay` so protocol timeouts are computed for the same delay
    /// envelope the checker explores.
    pub delay_bound: u64,
    /// Fault-injection budget per path.
    pub faults: FaultBudget,
    /// Maximum transitions along one path before it is truncated.
    pub max_depth: usize,
    /// Maximum states expanded before exploration aborts.
    pub max_states: u64,
}

impl McConfig {
    /// Fault-free exploration with the given delay bound and generous
    /// bounds.
    pub fn fault_free(delay_bound: u64) -> Self {
        McConfig {
            delay_bound,
            faults: FaultBudget::default(),
            max_depth: 256,
            max_states: 1_000_000,
        }
    }
}

/// One in-flight event plus the bookkeeping the checker and the replay
/// compiler need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingMeta {
    pub seq: u64,
    /// Dispatch time of the transition that created the event (0 for boot,
    /// the injection tick for externals).
    pub sent_at: SimTime,
    /// Enters the engine queue before the run (externals, duplicate
    /// copies): pops first within its tick.
    pub pre_run: bool,
    /// A duplicate copy minted by the fault layer; replayed via
    /// `inject_from` at its dispatch tick, so it has no delivery deadline.
    pub dup: bool,
}

pub(crate) struct Pending<M> {
    pub ev: McEvent<M>,
    pub meta: PendingMeta,
}

impl<M: Clone> Clone for Pending<M> {
    fn clone(&self) -> Self {
        Pending {
            ev: self.ev.clone(),
            meta: self.meta,
        }
    }
}

impl<M> Pending<M> {
    /// Exact-class events fire at `ev.time` in engine order: timers, ARQ
    /// bookkeeping, self/external deliveries (which never touch the radio —
    /// the engine enqueues them at an exact tick), and flow completions
    /// (the contention schedule is physics: a transfer finishes exactly
    /// when the flow table predicted, never earlier or later).
    pub fn exact(&self) -> bool {
        self.ev.is_timer() || self.ev.is_flow() || self.ev.origin() == Some(self.ev.node())
    }

    /// Latest realizable delivery tick for windowed events.
    pub fn deadline(&self, delay_bound: u64) -> SimTime {
        if self.meta.dup {
            SimTime::MAX
        } else {
            self.ev.time() + (delay_bound - 1)
        }
    }

    /// Engine pop order within a tick: pre-run injections first, then push
    /// order.
    pub fn pop_key(&self) -> (SimTime, u8, u64) {
        (
            self.ev.time(),
            if self.meta.pre_run { 0 } else { 1 },
            self.meta.seq,
        )
    }
}

/// One vertex of the schedule graph.
pub struct McState<P: Protocol> {
    /// Protocol state per node (crashed nodes keep their last state).
    pub nodes: Vec<P>,
    pub(crate) pending: Vec<Pending<P::Msg>>,
    /// Permanently crashed nodes.
    pub crashed: BTreeSet<usize>,
    /// Time of the last dispatch.
    pub now: SimTime,
    /// Seq of the last dispatch — same-tick dispatches must exceed it.
    pub(crate) last_seq: u64,
    pub(crate) next_seq: u64,
    /// Drops injected so far along this path.
    pub drops_used: u32,
    /// Duplicates injected so far along this path.
    pub dups_used: u32,
    /// Crashes injected so far along this path.
    pub crashes_used: u32,
    /// Transitions from the initial state.
    pub depth: usize,
    /// Snapshot of the engine's flow table (empty for per-message links):
    /// under a flow-model link the shared contention state is part of the
    /// explored state, restored into the engine before every dispatch.
    pub(crate) flows: FlowsSnapshot<P::Msg>,
}

impl<P: Protocol + Clone> Clone for McState<P>
where
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        McState {
            nodes: self.nodes.clone(),
            pending: self.pending.clone(),
            crashed: self.crashed.clone(),
            now: self.now,
            last_seq: self.last_seq,
            next_seq: self.next_seq,
            drops_used: self.drops_used,
            dups_used: self.dups_used,
            crashes_used: self.crashes_used,
            depth: self.depth,
            flows: self.flows.clone(),
        }
    }
}

impl<P: Protocol> McState<P> {
    /// No events in flight: a terminal (quiescent) state.
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of in-flight events.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The in-flight entries (replay compiler introspection).
    pub(crate) fn pending_entries(&self) -> &[Pending<P::Msg>] {
        &self.pending
    }
}

/// The kind of a schedule-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// Deliver a windowed message at its earliest realizable tick.
    Deliver,
    /// Fire the next exact-class event at its scheduled tick.
    Fire,
    /// The network loses a message (fault).
    Drop,
    /// The network delivers a second copy of a message (fault).
    Duplicate,
    /// The target node crashes right before handling the event (fault);
    /// the event is lost with it.
    CrashBefore,
    /// The target node handles the event, then crashes (fault); its
    /// outgoing messages survive, its own timers die.
    CrashAfter,
}

/// One edge of the schedule graph: a kind applied to a pending event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// What happens.
    pub kind: TransitionKind,
    /// Seq of the pending event it targets.
    pub seq: u64,
}

/// What happened during a logged re-execution of a counterexample path —
/// the replay compiler turns this into link scripts, injections, and an
/// event-count cutoff.
pub(crate) enum LogEvent<M> {
    /// A transition dispatched pending `seq` at tick `at`.
    Dispatched { seq: u64, at: SimTime },
    /// A handler output harvested during a dispatch; `seq` is `None` when
    /// the event was discarded at harvest (destination or relay already
    /// crashed).
    Created { ev: McEvent<M>, seq: Option<u64> },
    /// The fault layer dropped pending `seq`.
    FaultDropped { seq: u64 },
    /// A duplicate copy `new_seq` was minted from pending `of_seq`.
    Duplicated { of_seq: u64, new_seq: u64 },
    /// `node`'s crash window opens at tick `at`.
    Crashed { node: usize, at: SimTime },
    /// Pending `seq` was purged by a crash.
    Purged { seq: u64 },
}

/// The checker's handle on a simulator: initial state plus the drive cycle.
pub struct McSystem<P: Protocol> {
    pub(crate) sim: Simulator<P>,
    init: McState<P>,
    /// Fate log, recorded only during counterexample compilation.
    pub(crate) log: Option<Vec<LogEvent<P::Msg>>>,
}

impl<P> McSystem<P>
where
    P: Protocol + Clone,
    P::Msg: Clone + Debug,
{
    /// Boots every node under capture and seeds the initial in-flight set
    /// with the boot harvest plus `externals` (e.g. query submissions) —
    /// which must all be scheduled at tick ≥ 1, so boot owns tick 0.
    pub fn new(mut sim: Simulator<P>, externals: Vec<(SimTime, usize, P::Msg)>) -> Self {
        let mut pending = Vec::new();
        let mut next_seq = 0u64;
        for (t, node, msg) in &externals {
            assert!(*t >= 1, "externals must be scheduled at tick >= 1");
            pending.push(Pending {
                ev: McEvent::external(*t, *node, msg.clone()),
                meta: PendingMeta {
                    seq: next_seq,
                    sent_at: *t,
                    pre_run: true,
                    dup: false,
                },
            });
            next_seq += 1;
        }
        for ev in sim.capture_boot() {
            pending.push(Pending {
                ev,
                meta: PendingMeta {
                    seq: next_seq,
                    sent_at: 0,
                    pre_run: false,
                    dup: false,
                },
            });
            next_seq += 1;
        }
        let nodes = sim.nodes().to_vec();
        let flows = sim.flows_snapshot();
        McSystem {
            sim,
            init: McState {
                nodes,
                pending,
                crashed: BTreeSet::new(),
                now: 0,
                last_seq: 0,
                next_seq,
                drops_used: 0,
                dups_used: 0,
                crashes_used: 0,
                depth: 0,
                flows,
            },
            log: None,
        }
    }

    /// The state right after boot (before any transition).
    pub fn init_state(&self) -> McState<P> {
        self.init.clone()
    }

    /// The underlying simulator (topology, routing, costs so far).
    pub fn sim(&self) -> &Simulator<P> {
        &self.sim
    }

    /// Asserts the preconditions for *branching* exploration: a
    /// deterministic link (no RNG draws — sibling branches must observe
    /// identical link behaviour) and no ARQ (its engine-side sender state
    /// is not snapshotted). The FIFO schedule needs neither.
    pub fn assert_explorable(&self, config: &McConfig) {
        assert!(
            self.sim.link_deterministic(),
            "branching exploration requires a deterministic link model"
        );
        assert!(
            self.sim.arq_config().is_none(),
            "branching exploration does not support ARQ"
        );
        if self.sim.flow_model() {
            // Under a flow link every transmission is a flow continuation
            // dispatched inline by the engine, so the checker's fault layer
            // has no seam to drop, duplicate, or crash-purge individual
            // deliveries without diverging from engine semantics. Contended
            // cells explore contention, fault cells explore faults.
            assert!(
                config.faults.max_drops == 0
                    && config.faults.max_duplicates == 0
                    && config.faults.max_crashes == 0,
                "flow-model exploration must be fault-free (compose faults \
                 in the chaos grid instead)"
            );
        }
        assert_eq!(
            self.sim.max_hop_delay(),
            config.delay_bound,
            "capture link delay bound must match McConfig.delay_bound"
        );
        assert!(config.delay_bound >= 1);
    }

    /// Runs the FIFO-sequential schedule to quiescence: always dispatch the
    /// globally least pending event by engine pop order, at its exact tick,
    /// fault-free. This is byte-identical to
    /// `Simulator::run_to_completion` on the same construction (same link,
    /// seed, ARQ config, injections) — the cross-validation contract.
    /// Returns the simulator for inspection (nodes, costs, trace).
    ///
    /// # Panics
    /// Panics if more than `max_dispatches` events are processed
    /// (livelock guard).
    pub fn run_fifo(mut self, max_dispatches: u64) -> Simulator<P> {
        let mut pending = std::mem::take(&mut self.init.pending);
        let mut next_seq = self.init.next_seq;
        let mut dispatched = 0u64;
        while let Some(i) = (0..pending.len()).min_by_key(|&i| pending[i].pop_key()) {
            let p = pending.remove(i);
            dispatched += 1;
            assert!(dispatched <= max_dispatches, "FIFO schedule livelock?");
            for ev in self.sim.capture_dispatch(p.ev.time(), &p.ev) {
                pending.push(Pending {
                    ev,
                    meta: PendingMeta {
                        seq: next_seq,
                        sent_at: p.ev.time(),
                        pre_run: false,
                        dup: false,
                    },
                });
                next_seq += 1;
            }
        }
        self.sim
    }

    /// Earliest tick the checker may dispatch windowed event `m` in state
    /// `s`, honouring the same-tick insertion-order rule.
    fn earliest(s: &McState<P>, m: &Pending<P::Msg>) -> SimTime {
        let mut t = m.ev.time().max(s.now);
        if m.meta.dup {
            // A duplicate copy is replayed as a pre-run injection, which
            // pops first within its tick — it must open a fresh tick.
            t = t.max(s.now + 1);
        } else if t == s.now && m.meta.seq <= s.last_seq {
            // Same-tick, but the engine already popped past it: next tick.
            t = s.now + 1;
        }
        t
    }

    /// Whether dispatching windowed `m` at `t` keeps every other pending
    /// event schedulable in engine order.
    fn windowed_ok(
        s: &McState<P>,
        m: &Pending<P::Msg>,
        t: SimTime,
        delay_bound: u64,
        strict: bool,
    ) -> bool {
        if t > m.deadline(delay_bound) {
            return false;
        }
        for q in &s.pending {
            if q.meta.seq == m.meta.seq {
                continue;
            }
            if q.exact() {
                // Exact events fire at q.time; the engine pops them before
                // any same-tick event inserted later.
                let ok = t < q.ev.time()
                    || (!strict && t == q.ev.time() && !q.meta.pre_run && q.meta.seq > m.meta.seq);
                if !ok {
                    return false;
                }
            } else {
                let dl = q.deadline(delay_bound);
                let ok = t < dl || (!strict && t == dl && q.meta.seq > m.meta.seq);
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerates the realizable transitions out of `s` in a deterministic
    /// order. Symmetric pending entries (identical canonical descriptors)
    /// generate transitions only for the least seq.
    pub fn transitions(&self, s: &McState<P>, config: &McConfig) -> Vec<Transition> {
        let d = config.delay_bound;
        let mut out = Vec::new();
        let mut seen_desc: BTreeSet<String> = BTreeSet::new();

        // The unique next exact-class event, if schedulable.
        if let Some(e) = s
            .pending
            .iter()
            .filter(|p| p.exact())
            .min_by_key(|p| p.pop_key())
        {
            let t = e.ev.time();
            debug_assert!(
                t > s.now || e.meta.seq > s.last_seq || e.meta.pre_run,
                "exact event stranded behind the clock"
            );
            let ok = s.pending.iter().filter(|q| !q.exact()).all(|q| {
                let dl = q.deadline(d);
                t < dl || (t == dl && (q.meta.seq > e.meta.seq || e.meta.pre_run))
            });
            if ok {
                out.push(Transition {
                    kind: TransitionKind::Fire,
                    seq: e.meta.seq,
                });
                self.push_crash_transitions(s, e, t, config, &mut out);
            }
        }

        for m in s.pending.iter().filter(|p| !p.exact()) {
            if !seen_desc.insert(format!(
                "{}{}{}",
                m.meta.pre_run as u8,
                m.meta.dup as u8,
                m.ev.describe(s.now)
            )) {
                continue;
            }
            let t = Self::earliest(s, m);
            if Self::windowed_ok(s, m, t, d, false) {
                out.push(Transition {
                    kind: TransitionKind::Deliver,
                    seq: m.meta.seq,
                });
                // Crash timing is canonicalized to a fresh tick with strict
                // separation from every other event (a sound subset of
                // crash schedules; see module docs).
                let tc = t.max(s.now + 1);
                if Self::windowed_ok(s, m, tc, d, true) {
                    self.push_crash_transitions(s, m, tc, config, &mut out);
                }
            }
            if s.drops_used < config.faults.max_drops {
                out.push(Transition {
                    kind: TransitionKind::Drop,
                    seq: m.meta.seq,
                });
            }
            if !m.meta.dup && s.dups_used < config.faults.max_duplicates {
                out.push(Transition {
                    kind: TransitionKind::Duplicate,
                    seq: m.meta.seq,
                });
            }
        }
        out
    }

    /// Appends crash-before/crash-after transitions targeting event `p`
    /// (dispatching at `t`) when the budget and tick constraints allow.
    fn push_crash_transitions(
        &self,
        s: &McState<P>,
        p: &Pending<P::Msg>,
        t: SimTime,
        config: &McConfig,
        out: &mut Vec<Transition>,
    ) {
        if s.crashes_used >= config.faults.max_crashes {
            return;
        }
        // A flow completion is link bookkeeping, not a node event: the
        // engine settles the table before any liveness gate, so crashing
        // "before" it would strand the flow in the snapshot and diverge.
        if p.ev.is_flow() {
            return;
        }
        let node = p.ev.node();
        // Crashing needs a fresh tick so the crash window covers whole
        // ticks consistently on replay; exact events cannot move.
        if p.exact() && t <= s.now {
            return;
        }
        out.push(Transition {
            kind: TransitionKind::CrashBefore,
            seq: p.meta.seq,
        });
        // CrashAfter opens its window at t+1; an exact event of the same
        // node at tick t would be delivered by the engine but purged by the
        // checker — forbid that boundary.
        let boundary_exact = s.pending.iter().any(|q| {
            q.meta.seq != p.meta.seq && q.exact() && q.ev.node() == node && q.ev.time() == t
        });
        if !boundary_exact {
            out.push(Transition {
                kind: TransitionKind::CrashAfter,
                seq: p.meta.seq,
            });
        }
    }

    /// The tick a transition dispatches (or injects its fault) at.
    pub fn dispatch_time(&self, s: &McState<P>, tr: Transition) -> SimTime {
        let p = self.pending_by_seq(s, tr.seq);
        match tr.kind {
            TransitionKind::Fire => p.ev.time(),
            TransitionKind::Deliver => Self::earliest(s, p),
            TransitionKind::Drop | TransitionKind::Duplicate => s.now,
            TransitionKind::CrashBefore | TransitionKind::CrashAfter => {
                if p.exact() {
                    p.ev.time()
                } else {
                    Self::earliest(s, p).max(s.now + 1)
                }
            }
        }
    }

    pub(crate) fn pending_by_seq<'a>(&self, s: &'a McState<P>, seq: u64) -> &'a Pending<P::Msg> {
        s.pending
            .iter()
            .find(|p| p.meta.seq == seq)
            .expect("transition targets a live pending event")
    }

    /// Applies `tr` to `s`, running the real handler through the capture
    /// seam when the transition dispatches one. Returns the successor
    /// state.
    pub fn apply(&mut self, s: &McState<P>, tr: Transition) -> McState<P> {
        let mut ns = s.clone();
        ns.depth += 1;
        let at = self.dispatch_time(s, tr);
        let idx = ns
            .pending
            .iter()
            .position(|p| p.meta.seq == tr.seq)
            .expect("transition targets a live pending event");
        match tr.kind {
            TransitionKind::Drop => {
                ns.pending.remove(idx);
                ns.drops_used += 1;
                if let Some(log) = &mut self.log {
                    log.push(LogEvent::FaultDropped { seq: tr.seq });
                }
            }
            TransitionKind::Duplicate => {
                let copy_ev = ns.pending[idx].ev.clone();
                let meta = PendingMeta {
                    seq: ns.next_seq,
                    sent_at: ns.pending[idx].meta.sent_at,
                    pre_run: true,
                    dup: true,
                };
                ns.next_seq += 1;
                ns.dups_used += 1;
                if let Some(log) = &mut self.log {
                    log.push(LogEvent::Duplicated {
                        of_seq: tr.seq,
                        new_seq: meta.seq,
                    });
                }
                ns.pending.push(Pending { ev: copy_ev, meta });
            }
            TransitionKind::Deliver | TransitionKind::Fire => {
                let p = ns.pending.remove(idx);
                self.run_dispatch(&mut ns, &p, at);
            }
            TransitionKind::CrashBefore => {
                let p = ns.pending.remove(idx);
                ns.now = at;
                ns.last_seq = p.meta.seq;
                ns.crashes_used += 1;
                if let Some(log) = &mut self.log {
                    // The target dies with the node: same fate as a purge
                    // (an exact-class target pops as a dead-node drop at
                    // replay and must be counted).
                    log.push(LogEvent::Purged { seq: p.meta.seq });
                }
                self.crash_node(&mut ns, p.ev.node(), at);
            }
            TransitionKind::CrashAfter => {
                let p = ns.pending.remove(idx);
                self.run_dispatch(&mut ns, &p, at);
                ns.crashes_used += 1;
                // Window opens at at+1: the handler's own outputs to other
                // nodes survive (already in flight), its self-state dies.
                self.crash_node(&mut ns, p.ev.node(), at + 1);
            }
        }
        ns
    }

    fn run_dispatch(&mut self, ns: &mut McState<P>, p: &Pending<P::Msg>, at: SimTime) {
        self.sim.nodes_mut().clone_from_slice(&ns.nodes);
        // The capture link is pristine — crash state lives in `ns.crashed`
        // — so install it as the engine's liveness override for this
        // dispatch; otherwise `ctx.is_alive` would report crashed nodes
        // alive during exploration (and the failover paths that replay
        // exercises through scripted link crashes would be unexplorable).
        self.sim.set_dead_override(ns.crashed.iter().copied());
        // Branching exploration shares one engine: restore this state's
        // contention snapshot before the dispatch mutates the flow table,
        // then capture the successor's snapshot after.
        self.sim.flows_restore(&ns.flows);
        let harvested = self.sim.capture_dispatch(at, &p.ev);
        ns.nodes.clone_from_slice(self.sim.nodes());
        ns.flows = self.sim.flows_snapshot();
        ns.now = at;
        ns.last_seq = p.meta.seq;
        if let Some(log) = &mut self.log {
            log.push(LogEvent::Dispatched {
                seq: p.meta.seq,
                at,
            });
        }
        for ev in harvested {
            let to_crashed = ns.crashed.contains(&ev.node());
            // A message routed through an already-crashed relay is swallowed
            // there: it reaches route position i at tick at+i ≥ at+1, and
            // every standing crash window opened at a tick ≤ now+1 ≤ at+1.
            let via_crashed = !to_crashed
                && ev
                    .origin()
                    .is_some_and(|o| o != ev.node() && self.route_hits(o, ev.node(), &ns.crashed));
            if to_crashed || via_crashed {
                // Lost with the dead node/relay; replay scripts the loss.
                if let Some(log) = &mut self.log {
                    log.push(LogEvent::Created { ev, seq: None });
                }
                continue;
            }
            let seq = ns.next_seq;
            ns.next_seq += 1;
            if let Some(log) = &mut self.log {
                log.push(LogEvent::Created {
                    ev: ev.clone(),
                    seq: Some(seq),
                });
            }
            ns.pending.push(Pending {
                ev,
                meta: PendingMeta {
                    seq,
                    sent_at: at,
                    pre_run: false,
                    dup: false,
                },
            });
        }
    }

    /// Whether the route `src → dst` passes through any node in `crashed`
    /// as an intermediate relay.
    fn route_hits(&self, src: usize, dst: usize, crashed: &BTreeSet<usize>) -> bool {
        if crashed.is_empty() || src == dst {
            return false;
        }
        let routing = self.sim.network().routing();
        let mut cur = src;
        while cur != dst {
            let Some(next) = routing.next_hop(cur, dst) else {
                return false;
            };
            if next != dst && crashed.contains(&next) {
                return true;
            }
            cur = next;
        }
        false
    }

    /// Purges events addressed to `node` and in-flight messages whose
    /// remaining route crosses it as a relay.
    fn crash_node(&mut self, ns: &mut McState<P>, node: usize, crash_at: SimTime) {
        ns.crashed.insert(node);
        if let Some(log) = &mut self.log {
            log.push(LogEvent::Crashed { node, at: crash_at });
        }
        let routing = self.sim.network().routing();
        let mut purged = Vec::new();
        ns.pending.retain(|p| {
            let keep = (|| {
                // Flow completions are link bookkeeping, not node events:
                // the table still holds the transfer and must settle it
                // (the continuation's delivery is liveness-gated instead).
                if p.ev.is_flow() {
                    return true;
                }
                if p.ev.node() == node {
                    return false;
                }
                // Duplicate copies replay via direct injection — no relays.
                if p.exact() || p.meta.dup {
                    return true;
                }
                let Some(src) = p.ev.origin() else {
                    return true;
                };
                // Walk the route; with slack on the last hop the message is
                // at route position i at tick sent_at + i. A relay crashed
                // at a tick ≤ that swallows it.
                let mut cur = src;
                let mut i = 0u64;
                while cur != p.ev.node() {
                    let Some(next) = routing.next_hop(cur, p.ev.node()) else {
                        return true;
                    };
                    i += 1;
                    if next != p.ev.node() && next == node && p.meta.sent_at + i >= crash_at {
                        return false;
                    }
                    cur = next;
                }
                true
            })();
            if !keep {
                purged.push(p.meta.seq);
            }
            keep
        });
        if let Some(log) = &mut self.log {
            log.extend(purged.into_iter().map(|seq| LogEvent::Purged { seq }));
        }
    }

    /// FNV-1a fingerprint over the canonicalized state. Node states render
    /// through [`Canonicalize`]; pending events concatenate in seq order
    /// (seq order is behaviourally meaningful — it is engine pop order)
    /// with times relative to `now`, so uniformly time-shifted states
    /// merge.
    pub fn fingerprint(&self, s: &McState<P>) -> u64
    where
        P: Canonicalize,
    {
        let mut out = String::new();
        for (i, node) in s.nodes.iter().enumerate() {
            let _ = write!(out, "n{i}=");
            if s.crashed.contains(&i) {
                out.push_str("x:");
            }
            node.canonicalize(&mut out);
            out.push(';');
        }
        let _ = write!(
            out,
            "|f{}.{}.{}|p:",
            s.drops_used, s.dups_used, s.crashes_used
        );
        for p in &s.pending {
            // A same-tick event the engine already popped past is blocked
            // until the next tick — that distinction is behavioural.
            let blocked = p.ev.time() <= s.now && p.meta.seq <= s.last_seq && !p.meta.pre_run;
            let _ = write!(
                out,
                "[{}{}{}{}]",
                if blocked { "B" } else { "" },
                if p.meta.pre_run { "P" } else { "" },
                if p.meta.dup { "D" } else { "" },
                p.ev.describe(s.now)
            );
        }
        // Flow-model links: the contention snapshot (generation watermarks
        // included) is behavioural state — two states whose tables differ
        // can price or invalidate future transfers differently.
        out.push_str(&s.flows.describe(s.now));
        fnv1a(out.as_bytes())
    }
}
