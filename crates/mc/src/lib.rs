//! Exhaustive model checking over the *real* protocol handlers.
//!
//! The crate drives unmodified [`Protocol`](elink_netsim::Protocol)
//! implementations (core elink, maintenance, workload serving) through a
//! virtual network instead of the event queue: the engine's capture seam
//! ([`Simulator::capture_dispatch`](elink_netsim::Simulator::capture_dispatch))
//! returns what a handler *would* have enqueued, and [`McSystem`] owns the
//! resulting in-flight event multiset. DFS/BFS exploration then branches
//! over delivery orderings and fault-injection points (drop, duplicate,
//! crash-before/after-handler), pruning by FNV fingerprints over
//! canonicalized node + network state, under bounded depth/state budgets.
//!
//! Soundness rests on two contracts (argued in DESIGN.md §12):
//!
//! * **Shared dispatch path** — a captured dispatch is bit-for-bit the
//!   engine's own dispatch (billing, tracing, link decisions included), so
//!   the checker can never explore behaviour the [`Simulator`] could not
//!   exhibit. The FIFO schedule ([`McSystem::run_fifo`]) replays a seeded
//!   run byte-identically, and a cross-validation proptest pins that.
//! * **Realizable schedules** — messages have delivery windows
//!   `[send+1, send+D]` (with `D` the link delay bound), timers fire at
//!   exact times, and same-tick ordering follows engine insertion order, so
//!   every explored schedule is producible by a concrete per-hop delay
//!   assignment. Violations compile into a [`ScriptedLink`] script plus a
//!   replayable `JsonlTrace` that reproduces the failure under the normal
//!   `Simulator`.
//!
//! [`Simulator`]: elink_netsim::Simulator
//! [`ScriptedLink`]: elink_netsim::ScriptedLink

#![warn(missing_docs)]

pub mod explore;
/// Safety/liveness predicates evaluated at every explored state.
pub mod predicates;
/// Counterexample replay: re-drives a recorded schedule through the engine.
pub mod replay;
/// Canned model-checking scenarios (protocol + topology + predicate sets).
pub mod scenarios;
/// The explorable system: capture seam over the real protocol handlers.
pub mod system;

pub use explore::{explore, ExploreReport, Strategy, ViolationReport};
pub use predicates::{FnPredicate, McView, Predicate};
pub use replay::{compile, replay, ReplayOutcome, ReplaySpec};
pub use scenarios::{CheckOutcome, Scenario};
pub use system::{FaultBudget, McConfig, McState, McSystem, Transition, TransitionKind};

#[cfg(test)]
mod tests {
    use std::fmt::Write as _;
    use std::sync::{Arc, Mutex};

    use elink_netsim::{
        AsyncUniformLink, Canonicalize, Ctx, JsonlTrace, LinkModel, Protocol, ScriptedLink,
        SimNetwork, Simulator, SyncLink,
    };
    use elink_topology::Topology;

    use super::*;

    /// Toy protocol on the 0–1–2 path: node 0 pings node 2 (two hops, msg
    /// 10) and node 1 (one hop, msg 20) at start, and arms a timer; node 2
    /// answers the ping with a pong (msg 11).
    #[derive(Clone, Debug)]
    struct Toy {
        id: usize,
        seen: Vec<(usize, u32, u64)>,
        timer_at: Option<u64>,
    }

    impl Toy {
        fn fresh(n: usize) -> Vec<Toy> {
            (0..n)
                .map(|id| Toy {
                    id,
                    seen: Vec::new(),
                    timer_at: None,
                })
                .collect()
        }

        fn got(&self, msg: u32) -> bool {
            self.seen.iter().any(|&(_, m, _)| m == msg)
        }
    }

    impl Protocol for Toy {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.id == 0 {
                ctx.unicast(2, 10, "ping", 1);
                ctx.unicast(1, 20, "ping", 1);
                ctx.set_timer(5, 7);
            }
        }

        fn on_message(&mut self, from: usize, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.seen.push((from, msg, ctx.now()));
            if msg == 10 {
                ctx.unicast(0, 11, "pong", 1);
            }
        }

        fn on_timer(&mut self, _timer: u64, ctx: &mut Ctx<'_, u32>) {
            self.timer_at = Some(ctx.now());
        }
    }

    impl Canonicalize for Toy {
        fn canonicalize(&self, out: &mut String) {
            let _ = write!(out, "{:?}{:?}", self.seen, self.timer_at);
        }
    }

    fn toy_sim(link: Box<dyn LinkModel>, seed: u64) -> Simulator<Toy> {
        Simulator::new(
            SimNetwork::new(Topology::grid(1, 3)),
            link,
            seed,
            Toy::fresh(3),
        )
    }

    fn toy_scenario(delay_bound: u64) -> Scenario<Toy> {
        Scenario::new("toy", delay_bound, vec![], move |link| toy_sim(link, 7))
    }

    fn catalog(predicates: Vec<FnPredicate<Toy>>) -> Vec<Box<dyn Predicate<Toy>>> {
        predicates
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Predicate<Toy>>)
            .collect()
    }

    /// The FIFO-sequential schedule is byte-identical to a plain engine
    /// run — same trace stream, same node states — including under a
    /// randomized-delay link, where capture must consume the RNG in
    /// exactly the engine's order.
    #[test]
    fn fifo_schedule_matches_engine_run() {
        let link = AsyncUniformLink { min: 1, max: 3 };
        let trace_a = Arc::new(Mutex::new(JsonlTrace::new(Vec::new())));
        let mut plain = toy_sim(Box::new(link), 99);
        plain.set_trace(Arc::clone(&trace_a));
        plain.run_to_completion();

        let trace_b = Arc::new(Mutex::new(JsonlTrace::new(Vec::new())));
        let mut captured = toy_sim(Box::new(link), 99);
        captured.set_trace(Arc::clone(&trace_b));
        let fifo = McSystem::new(captured, vec![]).run_fifo(1_000);

        let bytes_a = trace_a.lock().unwrap().writer().clone();
        let bytes_b = trace_b.lock().unwrap().writer().clone();
        assert_eq!(
            String::from_utf8(bytes_a).unwrap(),
            String::from_utf8(bytes_b).unwrap()
        );
        for (a, b) in plain.nodes().iter().zip(fifo.nodes()) {
            assert_eq!(a.seen, b.seen);
            assert_eq!(a.timer_at, b.timer_at);
        }
    }

    /// Externals enter the FIFO schedule exactly like injected messages.
    #[test]
    fn fifo_schedule_matches_engine_run_with_injection() {
        let mut plain = toy_sim(Box::new(SyncLink), 1);
        plain.inject(4, 1, 77);
        plain.run_to_completion();

        let captured = toy_sim(Box::new(SyncLink), 1);
        let fifo = McSystem::new(captured, vec![(4, 1, 77)]).run_fifo(1_000);
        for (a, b) in plain.nodes().iter().zip(fifo.nodes()) {
            assert_eq!(a.seen, b.seen);
        }
        assert!(fifo.nodes()[1].got(77));
    }

    /// Fault-free exploration is exhaustive, quiesces, never sticks, and
    /// is deterministic run to run.
    #[test]
    fn exploration_is_exhaustive_and_deterministic() {
        let scenario = toy_scenario(2);
        let config = McConfig::fault_free(2);
        let run = || {
            let mut sys = scenario.system();
            explore(&mut sys, &config, &[], Strategy::Bfs)
        };
        let a = run();
        let b = run();
        assert!(a.exhaustive(), "truncated: {a:?}");
        assert!(a.quiescent >= 1);
        assert!(a.explored > a.quiescent);
        assert!(a.violation.is_none());
        assert_eq!(a.explored, b.explored);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.quiescent, b.quiescent);
    }

    /// A schedule-dependent invariant violation — node 2 sees the two-hop
    /// ping before node 1 sees the one-hop ping, which requires stretching
    /// the one-hop delay — is found by BFS and replays to the same
    /// violation under the normal engine with the compiled link script.
    #[test]
    fn reordering_violation_found_and_replayed() {
        let scenario = toy_scenario(2);
        let config = McConfig::fault_free(2);
        let predicates = catalog(vec![FnPredicate::invariant(
            "one-hop-first",
            |view: &McView<Toy>| {
                if view.nodes[2].got(10) && !view.nodes[1].got(20) {
                    return Err("two-hop ping outran the one-hop ping".into());
                }
                Ok(())
            },
        )]);
        let outcome = scenario.check(&config, &predicates, Strategy::Bfs);
        let violation = outcome.report.violation.expect("reordering is reachable");
        assert_eq!(violation.predicate, "one-hop-first");
        let (spec, replayed) = outcome.counterexample.expect("counterexample compiled");
        assert!(!spec.schedule.is_empty());
        assert!(
            replayed.reproduced,
            "replay diverged: ran {} events, schedule:\n{}",
            replayed.events_run,
            spec.schedule.join("\n")
        );
        assert_eq!(replayed.events_run, spec.run_events);
        assert!(!replayed.trace_jsonl.is_empty());
        // FIFO (all-ones delays) does NOT hit this ordering: the violation
        // needed the explorer.
        let fifo =
            McSystem::new(toy_sim(Box::new(ScriptedLink::pristine(2)), 7), vec![]).run_fifo(1_000);
        assert!(fifo.nodes()[1].got(20));
    }

    /// A goal violated only when the network drops a message: the drop
    /// fault is explored, the counterexample compiles to a first-hop
    /// `HopOutcome::Drop`, and the replayed run reproduces the failed
    /// goal at quiescence.
    #[test]
    fn drop_fault_counterexample_replays() {
        let scenario = toy_scenario(2);
        let mut config = McConfig::fault_free(2);
        config.faults.max_drops = 1;
        let predicates = catalog(vec![FnPredicate::goal(
            "pong-arrives",
            |view: &McView<Toy>| {
                if !view.nodes[0].got(11) {
                    return Err("node 0 never got the pong".into());
                }
                Ok(())
            },
        )]);
        let outcome = scenario.check(&config, &predicates, Strategy::Bfs);
        assert!(outcome.report.violation.is_some());
        let (_, replayed) = outcome.counterexample.expect("counterexample compiled");
        assert!(replayed.reproduced);
    }

    /// A crash fault kills the ponging node; the goal violation replays
    /// under a scripted crash window, exercising dead-node drops in the
    /// event-count cutoff.
    #[test]
    fn crash_fault_counterexample_replays() {
        let scenario = toy_scenario(2);
        let mut config = McConfig::fault_free(2);
        config.faults.max_crashes = 1;
        let predicates = catalog(vec![FnPredicate::goal(
            "pong-arrives",
            |view: &McView<Toy>| {
                if !view.nodes[0].got(11) {
                    return Err("node 0 never got the pong".into());
                }
                Ok(())
            },
        )]);
        let outcome = scenario.check(&config, &predicates, Strategy::Bfs);
        let violation = outcome
            .report
            .violation
            .as_ref()
            .expect("crash kills the pong");
        assert!(violation.path.iter().any(|t| matches!(
            t.kind,
            TransitionKind::CrashBefore | TransitionKind::CrashAfter
        )));
        let (_, replayed) = outcome.counterexample.expect("counterexample compiled");
        assert!(replayed.reproduced);
    }

    /// Duplicate faults re-deliver a message; the toy protocol records the
    /// second copy, violating an at-most-once invariant, and the replay
    /// reproduces it via a pre-run `inject_from`.
    #[test]
    fn duplicate_fault_counterexample_replays() {
        let scenario = toy_scenario(2);
        let mut config = McConfig::fault_free(2);
        config.faults.max_duplicates = 1;
        let predicates = catalog(vec![FnPredicate::invariant(
            "at-most-once",
            |view: &McView<Toy>| {
                for node in view.nodes {
                    for msg in [10u32, 20] {
                        if node.seen.iter().filter(|&&(_, m, _)| m == msg).count() > 1 {
                            return Err(format!("node {} saw {} twice", node.id, msg));
                        }
                    }
                }
                Ok(())
            },
        )]);
        let outcome = scenario.check(&config, &predicates, Strategy::Bfs);
        assert!(outcome.report.violation.is_some());
        let (spec, replayed) = outcome.counterexample.expect("counterexample compiled");
        assert!(
            replayed.reproduced,
            "replay diverged, schedule:\n{}",
            spec.schedule.join("\n")
        );
    }

    /// Depth and state budgets mark the report as non-exhaustive instead
    /// of silently truncating.
    #[test]
    fn budgets_mark_truncation() {
        let scenario = toy_scenario(2);
        let mut config = McConfig::fault_free(2);
        config.max_depth = 2;
        let mut sys = scenario.system();
        let shallow = explore(&mut sys, &config, &[], Strategy::Bfs);
        assert!(!shallow.exhaustive());
        assert!(shallow.truncated_depth > 0);

        let mut config = McConfig::fault_free(2);
        config.max_states = 3;
        let mut sys = scenario.system();
        let tiny = explore(&mut sys, &config, &[], Strategy::Bfs);
        assert!(tiny.truncated_states);
        assert!(!tiny.exhaustive());
    }
}
