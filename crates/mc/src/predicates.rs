//! The invariant-predicate catalog interface.
//!
//! Predicates come in two flavours:
//!
//! * **Invariants** — checked on the initial state and after every
//!   transition. They must hold in every reachable state (e.g. "every
//!   node's assignment is sound", "no stray-message counter moved").
//! * **Goals** — checked only at *quiescent* states (no events in
//!   flight). They express eventual properties under the explored fault
//!   budget (e.g. "every live node ends up clustered", "the query
//!   completed with a sound answer").
//!
//! A predicate sees an [`McView`]: the protocol node states, the crashed
//! set, the clock, and how much is still in flight. It returns
//! `Err(message)` to flag a violation; the explorer stops at the first
//! violation and compiles the path into a replayable counterexample.

use std::collections::BTreeSet;

use elink_netsim::{Protocol, SimTime};

/// A read-only snapshot of a checker state, handed to predicates.
pub struct McView<'a, P: Protocol> {
    /// Protocol state per node (crashed nodes keep their last state).
    pub nodes: &'a [P],
    /// Permanently crashed nodes.
    pub crashed: &'a BTreeSet<usize>,
    /// Time of the last dispatch.
    pub now: SimTime,
    /// Number of events still in flight.
    pub pending: usize,
    /// Whether this is a terminal (no events in flight) state.
    pub quiescent: bool,
}

impl<'a, P: Protocol> McView<'a, P> {
    /// Whether node `i` is still alive.
    pub fn alive(&self, i: usize) -> bool {
        !self.crashed.contains(&i)
    }

    /// Iterator over `(id, state)` of live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = (usize, &'a P)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed.contains(i))
    }
}

/// A named property over checker states.
pub trait Predicate<P: Protocol> {
    /// Stable name, used in reports and violation traces.
    fn name(&self) -> &str;

    /// Goals are only evaluated at quiescent states; invariants at every
    /// state.
    fn quiescent_only(&self) -> bool {
        false
    }

    /// `Err(message)` flags a violation at this state.
    fn check(&self, view: &McView<'_, P>) -> Result<(), String>;
}

/// A [`Predicate`] built from a closure.
pub struct FnPredicate<P: Protocol> {
    name: String,
    quiescent_only: bool,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&McView<'_, P>) -> Result<(), String>>,
}

impl<P: Protocol> FnPredicate<P> {
    /// An invariant: checked at every reachable state.
    pub fn invariant(
        name: impl Into<String>,
        f: impl Fn(&McView<'_, P>) -> Result<(), String> + 'static,
    ) -> Self {
        FnPredicate {
            name: name.into(),
            quiescent_only: false,
            f: Box::new(f),
        }
    }

    /// A goal: checked only at quiescent states.
    pub fn goal(
        name: impl Into<String>,
        f: impl Fn(&McView<'_, P>) -> Result<(), String> + 'static,
    ) -> Self {
        FnPredicate {
            name: name.into(),
            quiescent_only: true,
            f: Box::new(f),
        }
    }
}

impl<P: Protocol> Predicate<P> for FnPredicate<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn quiescent_only(&self) -> bool {
        self.quiescent_only
    }

    fn check(&self, view: &McView<'_, P>) -> Result<(), String> {
        (self.f)(view)
    }
}
