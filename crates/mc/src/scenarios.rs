//! Checkable scenarios: a simulator construction + external stimuli +
//! predicate catalog, packaged so exploration, counterexample compilation,
//! and replay all build the *same* system.
//!
//! The one invariant a scenario must keep is that `build` is a pure
//! function of the link it is handed: the exploration runs over a pristine
//! [`ScriptedLink`](elink_netsim::ScriptedLink) (all-ones delays) with the scenario's `delay_bound`,
//! and the replay runs over the compiled script — everything else
//! (topology, seed, protocol parameters) must be identical, or the replay
//! contract is void. Protocol timeouts computed from
//! `Ctx::max_hop_delay` see `delay_bound`, exactly as explored.
//!
//! Concrete scenario constructors for the elink growth protocol and the
//! workload serving stack live in [`elink_growth`](crate::scenarios::elink_growth) and [`serving`](crate::scenarios::serving).

use std::fmt::Debug;

use elink_netsim::{
    Canonicalize, FairShareLink, LinkModel, Protocol, ScriptedLink, SimTime, Simulator,
};

use crate::explore::{explore, ExploreReport, Strategy};
use crate::predicates::Predicate;
use crate::replay::{compile, replay, ReplayOutcome, ReplaySpec};
use crate::system::{McConfig, McSystem};

/// A named, reproducible model-checking setup.
pub struct Scenario<P: Protocol> {
    /// Scenario name (reports, gate output).
    pub name: &'static str,
    /// The link delay bound `D` the scenario is explored under.
    pub delay_bound: u64,
    /// External stimuli injected into the schedule (tick ≥ 1).
    pub externals: Vec<(SimTime, usize, P::Msg)>,
    /// When set, the scenario is explored under a contended
    /// [`FairShareLink`] of this capacity instead of the pristine scripted
    /// link: transmissions are priced through the flow table, flow
    /// completions fire as exact-class events, and the `FlowTable` snapshot
    /// joins node state in every fingerprint. Flow scenarios must be
    /// explored fault-free (see `McSystem::assert_explorable`) and have no
    /// scripted-replay path.
    pub flow_capacity: Option<u64>,
    #[allow(clippy::type_complexity)]
    build: Box<dyn Fn(Box<dyn LinkModel>) -> Simulator<P>>,
}

/// The result of checking one scenario: the exploration report, and — if a
/// violation was found — the compiled counterexample plus its replay
/// outcome.
pub struct CheckOutcome<M> {
    /// What the exploration saw.
    pub report: ExploreReport,
    /// Compiled counterexample and replay result for the violation.
    pub counterexample: Option<(ReplaySpec<M>, ReplayOutcome)>,
}

impl<P> Scenario<P>
where
    P: Protocol + Clone + Canonicalize,
    P::Msg: Clone + Debug,
{
    /// Packages a scenario. `build` must construct the identical simulator
    /// for any link handed to it (see module docs).
    pub fn new(
        name: &'static str,
        delay_bound: u64,
        externals: Vec<(SimTime, usize, P::Msg)>,
        build: impl Fn(Box<dyn LinkModel>) -> Simulator<P> + 'static,
    ) -> Self {
        Scenario {
            name,
            delay_bound,
            externals,
            flow_capacity: None,
            build: Box::new(build),
        }
    }

    /// Packages a *contended* scenario: explored under a
    /// [`FairShareLink`] of `capacity` scalars/tick (delay cap set to
    /// `delay_bound` so timeout math matches the explored envelope).
    pub fn new_flow(
        name: &'static str,
        delay_bound: u64,
        capacity: u64,
        externals: Vec<(SimTime, usize, P::Msg)>,
        build: impl Fn(Box<dyn LinkModel>) -> Simulator<P> + 'static,
    ) -> Self {
        Scenario {
            name,
            delay_bound,
            externals,
            flow_capacity: Some(capacity),
            build: Box::new(build),
        }
    }

    /// The scenario's simulator over an arbitrary link.
    pub fn build(&self, link: Box<dyn LinkModel>) -> Simulator<P> {
        (self.build)(link)
    }

    /// A fresh checker system over the capture link: pristine scripted for
    /// per-message scenarios, fair-sharing at the configured capacity for
    /// contended ones.
    pub fn system(&self) -> McSystem<P> {
        let link: Box<dyn LinkModel> = match self.flow_capacity {
            Some(capacity) => {
                Box::new(FairShareLink::new(capacity).with_delay_cap(self.delay_bound))
            }
            None => Box::new(ScriptedLink::pristine(self.delay_bound)),
        };
        let sim = self.build(link);
        McSystem::new(sim, self.externals.clone())
    }

    /// Explores the scenario; on a violation, compiles the counterexample
    /// on a fresh system and replays it under the normal engine. Contended
    /// scenarios skip the compile/replay leg — a contention schedule is not
    /// expressible as a per-message link script — and report the violation
    /// through the exploration report alone.
    pub fn check(
        &self,
        config: &McConfig,
        predicates: &[Box<dyn Predicate<P>>],
        strategy: Strategy,
    ) -> CheckOutcome<P::Msg> {
        let mut sys = self.system();
        let report = explore(&mut sys, config, predicates, strategy);
        let counterexample = if self.flow_capacity.is_some() {
            None
        } else {
            report.violation.as_ref().map(|v| {
                let mut fresh = self.system();
                let spec = compile(&mut fresh, &v.path, config);
                let predicate = predicates
                    .iter()
                    .find(|p| p.name() == v.predicate)
                    .expect("violated predicate is in the catalog");
                let outcome = replay(&spec, |link| self.build(link), predicate.as_ref());
                (spec, outcome)
            })
        };
        CheckOutcome {
            report,
            counterexample,
        }
    }
}

/// Concrete scenarios over the core elink growth protocol:
/// explicit-mode ELink growth on a 3-node path, explored to quiescence.
///
/// Fault-free, the scenario must grow two clusters ({0,1} and {2}),
/// complete every ack wave, and record no stray drops. Under a drop
/// budget (no ARQ in the explored configuration), growth can deadlock —
/// the checker finds the minimal losing schedule and replays it.
pub mod elink_growth {
    use std::sync::Arc;

    use elink_core::{build_sim, ElinkConfig, ElinkNode, SignalMode};
    use elink_metric::{Absolute, Feature, Metric};
    use elink_netsim::SimNetwork;
    use elink_topology::Topology;

    use crate::predicates::{FnPredicate, McView, Predicate};
    use crate::scenarios::Scenario;

    /// Float slop for distance comparisons in predicates (the protocol
    /// compares exact `f64`s; the slop only forgives re-computation order).
    const EPS: f64 = 1e-9;

    fn features() -> Vec<Feature> {
        vec![
            Feature::scalar(0.0),
            Feature::scalar(4.0),
            Feature::scalar(100.0),
        ]
    }

    /// δ for the scenario: admission radius 5.0, so node 1 (feature 4)
    /// joins node 0's cluster and node 2 (feature 100) stays separate.
    pub const DELTA: f64 = 10.0;

    /// 3-node path, explicit signalling, delay bound 2.
    pub fn three_node() -> Scenario<ElinkNode> {
        Scenario::new("elink-growth-3", 2, Vec::new(), |link| {
            build_sim(
                &SimNetwork::new(Topology::grid(1, 3)),
                &features(),
                Arc::new(Absolute),
                ElinkConfig::for_delta(DELTA),
                SignalMode::Explicit,
                link,
                11,
            )
        })
    }

    /// The growth predicate catalog. `allowed_strays` names the silent-drop
    /// sites justified for the explored fault budget (empty when
    /// fault-free; [`elink_core::stray::SITE_PHASE1_AFTER_COMPLETE`] under
    /// duplicate faults).
    pub fn predicates(
        allowed_strays: &'static [&'static str],
    ) -> Vec<Box<dyn Predicate<ElinkNode>>> {
        let radius = ElinkConfig::for_delta(DELTA).admission_radius();
        vec![
            // The expansion rule only admits a node within the admission
            // radius of the advertised root feature; the stored assignment
            // must never escape that bound.
            Box::new(FnPredicate::invariant(
                "admission-soundness",
                move |view: &McView<ElinkNode>| {
                    for (id, node) in view.live_nodes() {
                        if !node.clustered {
                            continue;
                        }
                        let d = Absolute.distance(&node.root_feature, node.feature());
                        if d > radius + EPS {
                            return Err(format!(
                                "node {id} assigned to root {} at distance {d} > {radius}",
                                node.root
                            ));
                        }
                    }
                    Ok(())
                },
            )),
            Box::new(FnPredicate::invariant(
                "no-unexpected-strays",
                move |view: &McView<ElinkNode>| {
                    for (id, node) in view.live_nodes() {
                        for site in &node.stray_drops {
                            if !allowed_strays.contains(site) {
                                return Err(format!(
                                    "node {id} silently dropped an event at site '{site}'"
                                ));
                            }
                        }
                    }
                    Ok(())
                },
            )),
            Box::new(FnPredicate::goal(
                "all-clustered",
                |view: &McView<ElinkNode>| {
                    for (id, node) in view.live_nodes() {
                        if !node.clustered {
                            return Err(format!("node {id} unclustered at quiescence"));
                        }
                    }
                    Ok(())
                },
            )),
            Box::new(FnPredicate::goal(
                "growth-complete",
                |view: &McView<ElinkNode>| {
                    for (id, node) in view.live_nodes() {
                        let open = node.unsettled_subtrees();
                        if open > 0 {
                            return Err(format!(
                                "node {id} still has {open} un-acked subtree(s) at quiescence"
                            ));
                        }
                    }
                    Ok(())
                },
            )),
        ]
    }
}

/// Concrete scenarios over the workload serving stack:
/// one query through the real serving deployment (clustering, M-tree,
/// backbone, plans all built by [`elink_workload::WorkloadSim`]) on a 4-node grid with
/// the recovery layer armed, explored under crash and drop faults.
pub mod serving {
    use std::sync::Arc;

    use elink_metric::{Absolute, Feature, Metric};
    use elink_topology::{NodeId, Topology};
    use elink_workload::protocol::ServeMsg;
    use elink_workload::{
        expected_matches, Arrival, ServeNode, ServeOptions, WorkloadSim, WorkloadSpec,
    };

    use crate::predicates::{FnPredicate, McView, Predicate};
    use crate::scenarios::Scenario;

    /// Float slop for distance comparisons in predicates.
    const EPS: f64 = 1e-9;

    /// δ for the scenario: clusters {0} and {1,2,3}.
    pub const DELTA: f64 = 10.0;

    fn features() -> Vec<Feature> {
        vec![
            Feature::scalar(0.0),
            Feature::scalar(50.0),
            Feature::scalar(51.0),
            Feature::scalar(52.0),
        ]
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            seed: 5,
            n_templates: 1,
            zipf_s: 0.0,
            path_fraction: 0.0,
            // No generated arrivals: the checker injects the one query as
            // an external stimulus and owns the schedule entirely.
            n_queries: 0,
            arrival: Arrival::Open { mean_gap: 8 },
            radius_frac: 0.8,
            n_updates: 0,
            update_gap: 1,
            drift_frac: 0.0,
            n_subscribers: 0,
        }
    }

    fn deploy(link: Box<dyn elink_netsim::LinkModel>) -> WorkloadSim {
        let mut opts = ServeOptions::for_delta(DELTA);
        opts.recovery = true;
        WorkloadSim::build_with_link(
            Topology::grid(2, 2),
            features(),
            Arc::new(Absolute),
            DELTA,
            &spec(),
            opts,
            link,
            None,
        )
    }

    /// 4-node serving deployment, one query submitted at node 0, delay
    /// bound 2.
    pub fn four_node() -> Scenario<ServeNode> {
        let externals = vec![(
            1,
            0usize,
            ServeMsg::Submit {
                qid: 1,
                template: 0,
            },
        )];
        Scenario::new("serving-4", 2, externals, |link| deploy(link).into_sim())
    }

    /// The contended variant: the same 4-node deployment explored under a
    /// [`elink_netsim::FairShareLink`] of 1 scalar/tick, with two queries
    /// submitted back-to-back so their serving traffic shares saturated
    /// links. Every transmission is priced through the flow table — the
    /// `FlowTable` snapshot (generation watermarks included) joins node
    /// state in each fingerprint, and flow completions fire as exact-class
    /// events. Fault-free by construction (see
    /// `McSystem::assert_explorable`): the cell checks that answer
    /// soundness and M-tree covering survive arbitrary contention
    /// interleavings, not crash schedules.
    pub fn four_node_contended() -> Scenario<ServeNode> {
        let externals = vec![
            (
                1,
                0usize,
                ServeMsg::Submit {
                    qid: 1,
                    template: 0,
                },
            ),
            (
                2,
                3usize,
                ServeMsg::Submit {
                    qid: 2,
                    template: 0,
                },
            ),
        ];
        Scenario::new_flow("serving-4-contended", 2, 1, externals, |link| {
            deploy(link).into_sim()
        })
    }

    /// The serving predicate catalog. Ground truth is computed over the
    /// initial anchors (the scenario injects no updates, so anchors never
    /// move) with the same brute-force oracle the chaos suite uses.
    pub fn predicates() -> Vec<Box<dyn Predicate<ServeNode>>> {
        let feats = features();
        let deployment = deploy(Box::new(elink_netsim::SyncLink));
        let truths: Vec<Vec<NodeId>> = deployment
            .schedule()
            .templates
            .iter()
            .map(|t| expected_matches(t, &feats, &Absolute))
            .collect();
        let truths = Arc::new(truths);
        let t1 = Arc::clone(&truths);
        let t2 = Arc::clone(&truths);
        vec![
            // coverage_milli honesty: every answer is a sound subset of
            // brute-force ground truth over anchors, and full coverage
            // (1000) certifies exact equality.
            Box::new(FnPredicate::invariant(
                "answer-soundness",
                move |view: &McView<ServeNode>| {
                    for (id, node) in view.live_nodes() {
                        for cq in node.completed() {
                            let truth = &t1[cq.template as usize];
                            if let Some(m) = cq.matches.iter().find(|m| !truth.contains(m)) {
                                return Err(format!(
                                    "query {} at node {id} reported non-matching node {m}",
                                    cq.qid
                                ));
                            }
                            if cq.coverage_milli == 1000 && &cq.matches != truth {
                                return Err(format!(
                                    "query {} at node {id} claims full coverage but \
                                     answered {:?}, truth {:?}",
                                    cq.qid, cq.matches, truth
                                ));
                            }
                        }
                    }
                    Ok(())
                },
            )),
            // Cache exactness: cached subtree answers may only contain true
            // matches (anchors are static here, so staleness is no excuse).
            Box::new(FnPredicate::invariant(
                "cache-exactness",
                move |view: &McView<ServeNode>| {
                    for (id, node) in view.live_nodes() {
                        for t in 0..t2.len() as u16 {
                            let Some((matches, _)) = node.cached(t) else {
                                continue;
                            };
                            let truth = &t2[t as usize];
                            if let Some(m) = matches.iter().find(|m| !truth.contains(m)) {
                                return Err(format!(
                                    "node {id} cached non-matching node {m} for template {t}"
                                ));
                            }
                        }
                    }
                    Ok(())
                },
            )),
            // M-tree covering invariant: every routing entry's bound stays
            // inside the node's own covering radius — the soundness
            // precondition for Prune/IncludeAll shortcuts. Failover
            // adoption must inflate the successor's radius to keep it.
            Box::new(FnPredicate::invariant(
                "mtree-covering",
                move |view: &McView<ServeNode>| {
                    for (id, node) in view.live_nodes() {
                        let plan = node.plan();
                        for e in &plan.entries {
                            let bound = Absolute.distance(node.anchor(), &e.feature) + e.radius;
                            if bound > plan.radius + EPS {
                                return Err(format!(
                                    "node {id}: child {} bound {bound} exceeds covering \
                                     radius {}",
                                    e.child, plan.radius
                                ));
                            }
                        }
                    }
                    Ok(())
                },
            )),
            // Liveness: with the recovery layer armed, every surviving
            // initiator gets an answer (possibly partial) by quiescence.
            Box::new(FnPredicate::goal(
                "query-answered",
                |view: &McView<ServeNode>| {
                    for (id, node) in view.live_nodes() {
                        if node.unanswered() > 0 {
                            return Err(format!(
                                "node {id} still has {} unanswered quer(ies) at quiescence",
                                node.unanswered()
                            ));
                        }
                    }
                    Ok(())
                },
            )),
        ]
    }
}
