//! Counterexample compilation: a checker path becomes a concrete run of the
//! normal [`Simulator`](elink_netsim::Simulator).
//!
//! The explorer's [`ViolationReport`](crate::ViolationReport) is a sequence
//! of abstract transitions. [`compile`] re-executes that path against a
//! fresh [`McSystem`] with fate logging on, and turns what happened into:
//!
//! * a [`ScriptedLink`](elink_netsim::ScriptedLink) script — per-hop outcomes, in the exact order the
//!   engine will consume them (handler execution order × send order ×
//!   route order), with the slack that realizes each delivery time pushed
//!   onto the *last* hop, and a first-hop [`HopOutcome::Drop`](elink_netsim::HopOutcome::Drop) for every
//!   message the schedule lost (fault drop, crash purge, or still in
//!   flight at the violation — the engine never observes the difference in
//!   node state);
//! * crash windows (`ScriptedLink::crash`) for the checker's crash faults;
//! * the pre-run injections (external stimuli and duplicate copies, in
//!   engine pop order);
//! * an event-count cutoff `k` for [`Simulator::run_events`](elink_netsim::Simulator::run_events) — `run_until`
//!   cannot split a tick, but the violation may sit mid-tick, so the replay
//!   counts queue pops instead: boot starts, every dispatched event, and
//!   every dead-node drop the crash windows will cause before the final
//!   step.
//!
//! [`replay`](crate::replay::replay) then builds a simulator over that script, runs exactly `k`
//! events, and re-evaluates the violated predicate on the resulting node
//! states — `reproduced == true` is the contract that the abstract
//! counterexample is a real execution.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::sync::{Arc, Mutex};

use elink_netsim::{
    HopOutcome, JsonlTrace, LinkModel, McEvent, Protocol, ScriptedLink, SimTime, Simulator,
};

use crate::predicates::{McView, Predicate};
use crate::system::{LogEvent, McConfig, McSystem, PendingMeta, Transition};

/// How one in-flight event's story ended along the counterexample path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Dispatched (its handler ran) at this tick.
    Dispatched(SimTime),
    /// Removed by a fault drop.
    FaultDropped,
    /// Purged by a crash (addressed to, or relayed through, a dead node).
    Purged,
    /// Still pending when the violation hit.
    InFlight,
}

/// One pre-run injection, in engine pop order.
struct Injection<M> {
    at: SimTime,
    /// `Some(origin)` replays a duplicate copy via
    /// [`Simulator::inject_from`]; `None` is an external stimulus.
    from: Option<usize>,
    node: usize,
    msg: M,
}

/// Everything needed to reproduce a counterexample under the normal
/// engine.
pub struct ReplaySpec<M> {
    delay_bound: u64,
    hops: Vec<(usize, usize, HopOutcome)>,
    crashes: Vec<(usize, SimTime)>,
    injections: Vec<Injection<M>>,
    /// Queue pops to execute — the violation point.
    pub run_events: u64,
    /// The checker clock at the violation.
    pub violation_now: SimTime,
    /// Crashed set at the violation (for predicate evaluation).
    pub crashed: BTreeSet<usize>,
    /// In-flight event count at the violation (for predicate evaluation).
    pub pending_at_violation: usize,
    /// Human-readable schedule, one line per transition.
    pub schedule: Vec<String>,
}

/// What [`replay`] observed.
pub struct ReplayOutcome {
    /// The violated predicate failed again on the replayed node states.
    pub reproduced: bool,
    /// The predicate's message at the replayed state (if it failed).
    pub message: Option<String>,
    /// Events the engine actually processed (equals the spec's
    /// `run_events` when the schedule aligned).
    pub events_run: u64,
    /// The engine's JSONL trace of the whole replayed run.
    pub trace_jsonl: Vec<u8>,
}

/// Re-executes `path` on a *fresh* `sys` (same scenario construction that
/// was explored) and compiles the replay spec.
///
/// # Panics
/// Panics if the path is not executable on `sys` (wrong system or a
/// checker bug): every transition must target a live pending event and
/// every realized delay must fit the delay bound.
pub fn compile<P>(
    sys: &mut McSystem<P>,
    path: &[Transition],
    config: &McConfig,
) -> ReplaySpec<P::Msg>
where
    P: Protocol + Clone,
    P::Msg: Clone + Debug,
{
    sys.assert_explorable(config);
    sys.log = Some(Vec::new());
    let mut state = sys.init_state();

    // Everything ever pending, by seq; fates refined as the log folds.
    let mut info: BTreeMap<u64, (McEvent<P::Msg>, PendingMeta)> = BTreeMap::new();
    // Creation order = engine send order: boot harvest first (init pending
    // minus externals, already in seq order), then log order.
    let mut creation: Vec<(Option<u64>, McEvent<P::Msg>)> = Vec::new();
    for p in state.pending_entries() {
        info.insert(p.meta.seq, (p.ev.clone(), p.meta));
        if !p.meta.pre_run {
            creation.push((Some(p.meta.seq), p.ev.clone()));
        }
    }

    let mut schedule = Vec::new();
    for tr in path {
        let at = sys.dispatch_time(&state, *tr);
        let ev = sys.pending_by_seq(&state, tr.seq).ev.clone();
        schedule.push(format!(
            "{:?} seq={} at t{}: {}",
            tr.kind,
            tr.seq,
            at,
            ev.describe(0)
        ));
        state = sys.apply(&state, *tr);
    }
    let log = sys.log.take().unwrap_or_default();

    let mut fates: BTreeMap<u64, Fate> = BTreeMap::new();
    let mut last_dispatch: Option<(u64, SimTime)> = None;
    let mut dispatched = 0u64;
    let mut cur_at = 0;
    for entry in &log {
        match entry {
            LogEvent::Dispatched { seq, at } => {
                fates.insert(*seq, Fate::Dispatched(*at));
                last_dispatch = Some((*seq, *at));
                dispatched += 1;
                cur_at = *at;
            }
            LogEvent::Created { ev, seq } => {
                if let Some(seq) = seq {
                    info.insert(
                        *seq,
                        (
                            ev.clone(),
                            PendingMeta {
                                seq: *seq,
                                sent_at: cur_at,
                                pre_run: false,
                                dup: false,
                            },
                        ),
                    );
                }
                creation.push((*seq, ev.clone()));
            }
            LogEvent::FaultDropped { seq } => {
                fates.insert(*seq, Fate::FaultDropped);
            }
            LogEvent::Duplicated { of_seq, new_seq } => {
                let (ev, meta) = info
                    .get(of_seq)
                    .expect("duplicate of a known event")
                    .clone();
                info.insert(
                    *new_seq,
                    (
                        ev,
                        PendingMeta {
                            seq: *new_seq,
                            sent_at: meta.sent_at,
                            pre_run: true,
                            dup: true,
                        },
                    ),
                );
            }
            LogEvent::Crashed { .. } => {}
            LogEvent::Purged { seq } => {
                fates.insert(*seq, Fate::Purged);
            }
        }
    }

    let fate_of = |seq: u64| *fates.get(&seq).unwrap_or(&Fate::InFlight);

    // Per-hop link script, in engine consumption order. Externals and
    // duplicate copies bypass the link; exact-class events are
    // engine-internal. Everything else walks its route: delivered events
    // carry their realized slack on the last hop, lost events drop on the
    // first.
    let routing = sys.sim().network().routing();
    let mut hops: Vec<(usize, usize, HopOutcome)> = Vec::new();
    for (seq, ev) in &creation {
        let Some(origin) = ev.origin() else { continue };
        let dst = ev.node();
        if origin == dst {
            continue; // self-delivery: pushed directly, no radio
        }
        let delivered_at = seq.and_then(|s| match fate_of(s) {
            Fate::Dispatched(at) => Some(at),
            _ => None,
        });
        match delivered_at {
            Some(at) => {
                assert!(
                    at >= ev.time() && at - ev.time() < config.delay_bound,
                    "realized delivery outside the delay window"
                );
                let mut cur = origin;
                loop {
                    let next = routing
                        .next_hop(cur, dst)
                        .expect("captured message on an unroutable path");
                    let delay = if next == dst { 1 + (at - ev.time()) } else { 1 };
                    hops.push((cur, next, HopOutcome::Deliver { delay }));
                    if next == dst {
                        break;
                    }
                    cur = next;
                }
            }
            None => {
                let next = routing
                    .next_hop(origin, dst)
                    .expect("captured message on an unroutable path");
                hops.push((origin, next, HopOutcome::Drop));
            }
        }
    }

    let crashes: Vec<(usize, SimTime)> = log
        .iter()
        .filter_map(|e| match e {
            LogEvent::Crashed { node, at } => Some((*node, *at)),
            _ => None,
        })
        .collect();

    // Pre-run injections: the mc-dispatched externals and duplicate
    // copies, in seq order (= engine pop order within each tick; pre-run
    // entries pop before any same-tick network arrival).
    let mut injections = Vec::new();
    for (seq, (ev, meta)) in &info {
        if !meta.pre_run {
            continue;
        }
        let Fate::Dispatched(at) = fate_of(*seq) else {
            continue; // undispatched stimuli never enter the replay queue
        };
        let msg = ev
            .message()
            .expect("pre-run injections are deliveries")
            .clone();
        injections.push(Injection {
            at,
            from: if meta.dup { ev.origin() } else { None },
            node: ev.node(),
            msg,
        });
        if !meta.dup {
            debug_assert!(at == ev.time(), "externals are exact-class");
        }
    }

    // Event-count cutoff: boot starts + every dispatched event + every
    // dead-node drop popping no later than the final dispatched step.
    // Dead-node drops are the crash-purged exact-class events (timers,
    // self-deliveries): they sit in the engine queue at their exact ticks
    // and pop inside their node's crash window. Purged *messages* never
    // enqueue (first-hop drop) and purged stimuli are never injected.
    let n = sys.sim().nodes().len() as u64;
    let mut k = n + dispatched;
    if let Some((fseq, fat)) = last_dispatch {
        let (fev, fmeta) = &info[&fseq];
        debug_assert!(fev.time() <= fat);
        let final_key = (fat, u8::from(!fmeta.pre_run), fseq);
        for (seq, (ev, meta)) in &info {
            if fate_of(*seq) != Fate::Purged {
                continue;
            }
            let exact = ev.is_timer() || ev.origin() == Some(ev.node());
            if !exact || meta.pre_run || meta.dup {
                continue; // messages first-hop-drop; stimuli are not injected
            }
            let key = (ev.time(), 1u8, *seq);
            if key <= final_key {
                k += 1;
            }
        }
    }

    ReplaySpec {
        delay_bound: config.delay_bound,
        hops,
        crashes,
        injections,
        run_events: k,
        violation_now: state.now,
        crashed: state.crashed.clone(),
        pending_at_violation: state.pending_len(),
        schedule,
    }
}

/// Builds a simulator over the compiled script (via `build`, which
/// receives the scripted link — use the same scenario construction as the
/// exploration), runs it to the violation point, and re-evaluates
/// `predicate` there. The full engine trace of the run is returned as
/// JSONL bytes.
pub fn replay<P, F>(
    spec: &ReplaySpec<P::Msg>,
    build: F,
    predicate: &dyn Predicate<P>,
) -> ReplayOutcome
where
    P: Protocol,
    P::Msg: Clone,
    F: FnOnce(Box<dyn LinkModel>) -> Simulator<P>,
{
    let mut link = ScriptedLink::pristine(spec.delay_bound);
    for (from, to, outcome) in &spec.hops {
        link.push_hop(*from, *to, *outcome);
    }
    for (node, at) in &spec.crashes {
        link.crash(*node, *at);
    }
    let mut sim = build(Box::new(link));
    let trace = Arc::new(Mutex::new(JsonlTrace::new(Vec::new())));
    sim.set_trace(Arc::clone(&trace));
    for inj in &spec.injections {
        match inj.from {
            Some(origin) => sim.inject_from(inj.at, origin, inj.node, inj.msg.clone()),
            None => sim.inject(inj.at, inj.node, inj.msg.clone()),
        }
    }
    let events_run = sim.run_events(spec.run_events);
    let view = McView {
        nodes: sim.nodes(),
        crashed: &spec.crashed,
        now: spec.violation_now,
        pending: spec.pending_at_violation,
        quiescent: spec.pending_at_violation == 0,
    };
    let (reproduced, message) = match predicate.check(&view) {
        Ok(()) => (false, None),
        Err(m) => (true, Some(m)),
    };
    let trace_jsonl = trace.lock().map(|t| t.writer().clone()).unwrap_or_default();
    ReplayOutcome {
        reproduced,
        message,
        events_run,
        trace_jsonl,
    }
}
