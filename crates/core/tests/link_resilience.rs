//! Regression tests for the layered netsim substrate: seed determinism of
//! the ELink and maintenance protocols under every link model, and ELink's
//! behaviour when the link layer crash-fails nodes mid-run.

use elink_core::maintenance_protocol::{maintenance_nodes, MaintMsg};
use elink_core::protocol::SignalMode;
use elink_core::{run_implicit, run_with_link, run_with_link_arq, ElinkConfig, ElinkOutcome};
use elink_metric::{Absolute, Feature, Metric};
use elink_netsim::{ArqConfig, DelayModel, LinkModel, LossyLink, SimNetwork, Simulator};
use elink_topology::Topology;
use std::sync::Arc;

/// 6×6 grid with a smooth two-zone feature field.
fn grid_scenario() -> (SimNetwork, Vec<Feature>) {
    let topo = Topology::grid(6, 6);
    let features: Vec<Feature> = (0..topo.n())
        .map(|v| Feature::scalar(if v % 6 < 3 { 0.0 } else { 50.0 }))
        .collect();
    (SimNetwork::new(topo), features)
}

/// One swept link regime: name, transport, signalling mode, ARQ config.
type LinkRegime = (
    &'static str,
    Box<dyn LinkModel>,
    SignalMode,
    Option<ArqConfig>,
);

/// The three link regimes each determinism test sweeps. Explicit signalling
/// runs everywhere — under loss it rides the engine's ARQ sublayer, which
/// retransmits each dropped hop instead of letting the handshake stall.
fn link_regimes() -> Vec<LinkRegime> {
    vec![
        ("sync", DelayModel::Sync.into(), SignalMode::Explicit, None),
        (
            "async",
            DelayModel::Async { min: 1, max: 4 }.into(),
            SignalMode::Explicit,
            None,
        ),
        (
            "lossy",
            LossyLink::new(1, 3).with_drop_prob(0.15).into(),
            SignalMode::Explicit,
            Some(ArqConfig::default()),
        ),
    ]
}

/// (assignments, elapsed, per-kind cost bill) — everything a rerun must reproduce.
type RunSnapshot = (Vec<usize>, u64, Vec<(&'static str, u64, u64)>);

fn snapshot(outcome: &ElinkOutcome) -> RunSnapshot {
    (
        outcome.clustering.assignment.clone(),
        outcome.elapsed,
        outcome
            .costs
            .iter()
            .map(|(k, s)| (k, s.packets, s.cost))
            .collect(),
    )
}

#[test]
fn elink_is_deterministic_per_seed_under_every_link_model() {
    for (name, _, mode, arq) in link_regimes() {
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let (network, features) = grid_scenario();
                let link = link_regimes()
                    .into_iter()
                    .find(|(n, _, _, _)| *n == name)
                    .unwrap()
                    .1;
                let outcome = run_with_link_arq(
                    &network,
                    &features,
                    Arc::new(Absolute),
                    ElinkConfig::for_delta(10.0),
                    mode,
                    link,
                    9,
                    arq,
                );
                snapshot(&outcome)
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "{name}: cluster assignments diverge");
        assert_eq!(runs[0].1, runs[1].1, "{name}: completion times diverge");
        assert_eq!(runs[0].2, runs[1].2, "{name}: cost books diverge");
    }
}

#[test]
fn maintenance_protocol_is_deterministic_per_seed_under_every_link_model() {
    let (network, features) = grid_scenario();
    let metric: Arc<dyn Metric> = Arc::new(Absolute);
    let clustering = run_implicit(
        &network,
        &features,
        Arc::clone(&metric),
        ElinkConfig::for_delta(10.0),
    )
    .clustering;
    // A deterministic update stream: each touched node drifts a little.
    let stream: Vec<(usize, f64)> = (0..30)
        .map(|i| {
            let node = (i * 11 + 3) % features.len();
            let base = if node % 6 < 3 { 0.0 } else { 50.0 };
            (node, base + ((i % 5) as f64 - 2.0))
        })
        .collect();

    for (name, _, _, arq) in link_regimes() {
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let link = link_regimes()
                    .into_iter()
                    .find(|(n, _, _, _)| *n == name)
                    .unwrap()
                    .1;
                let nodes =
                    maintenance_nodes(&clustering, Arc::clone(&metric), &features, 10.0, 1.0);
                let mut sim = Simulator::new(network.clone(), link, 9, nodes);
                if let Some(arq_config) = arq {
                    sim.enable_arq(arq_config);
                }
                sim.run_to_completion();
                for &(node, value) in &stream {
                    let now = sim.now();
                    sim.inject(now, node, MaintMsg::FeatureUpdate(Feature::scalar(value)));
                    sim.run_to_completion();
                }
                let roots: Vec<usize> = sim.nodes().iter().map(|n| n.root).collect();
                let bill: Vec<_> = sim
                    .costs()
                    .iter()
                    .map(|(k, s)| (k, s.packets, s.cost))
                    .collect();
                let ledger = sim.costs().nodes().to_vec();
                (roots, sim.now(), bill, ledger)
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "{name}: final roots diverge");
        assert_eq!(runs[0].1, runs[1].1, "{name}: final times diverge");
        assert_eq!(runs[0].2, runs[1].2, "{name}: cost books diverge");
        assert_eq!(runs[0].3, runs[1].3, "{name}: per-node ledgers diverge");
    }
}

#[test]
fn elink_is_deterministic_per_seed_on_random_uniform_topology() {
    // Same seed, twice, on an irregular (random-uniform) deployment: the
    // whole CostBook — per-kind bill AND per-node ledger — and the cluster
    // assignment must be bit-for-bit identical. This is the dynamic check
    // backing simlint's no-unordered-iteration rule: a HashMap order leak
    // into message emission shows up here as a diverging ledger.
    let topo = Topology::random_synthetic(60, 42);
    let features: Vec<Feature> = (0..topo.n())
        .map(|v| Feature::scalar(((v * 7) % 3) as f64 * 40.0))
        .collect();
    for (name, _, mode, arq) in link_regimes() {
        let runs: Vec<ElinkOutcome> = (0..2)
            .map(|_| {
                let network = SimNetwork::new(topo.clone());
                let link = link_regimes()
                    .into_iter()
                    .find(|(n, _, _, _)| *n == name)
                    .unwrap()
                    .1;
                run_with_link_arq(
                    &network,
                    &features,
                    Arc::new(Absolute),
                    ElinkConfig::for_delta(10.0),
                    mode,
                    link,
                    7,
                    arq,
                )
            })
            .collect();
        assert_eq!(
            runs[0].clustering.assignment, runs[1].clustering.assignment,
            "{name}: cluster assignments diverge on random topology"
        );
        assert_eq!(
            runs[0].costs, runs[1].costs,
            "{name}: CostBook ledgers diverge on random topology"
        );
        assert_eq!(
            runs[0].elapsed, runs[1].elapsed,
            "{name}: completion times diverge on random topology"
        );
    }
}

/// The reliability headline: handshake-driven Explicit ELink, run over links
/// that drop 20% of all transmissions, produces the *same cluster
/// assignment* as the loss-free run with the same transport — the ARQ
/// sublayer absorbs every loss with bounded retries (no protocol changes),
/// and the protocol's conservative timeouts stretch to the ARQ delivery
/// envelope. The transport is held fixed on both sides because the timeout
/// scale is part of Explicit ELink's timing (exactly as sync vs async
/// networks may resolve expansion races differently); the claim under test
/// is that *loss itself* is invisible.
#[test]
fn explicit_over_arq_at_drop_02_matches_loss_free_assignment() {
    let config = ElinkConfig::for_delta(10.0);
    let run = |drop: f64| {
        let (network, features) = grid_scenario();
        run_with_link_arq(
            &network,
            &features,
            Arc::new(Absolute),
            config,
            SignalMode::Explicit,
            LossyLink::new(1, 1).with_drop_prob(drop),
            11,
            Some(ArqConfig::default()),
        )
    };
    let loss_free = run(0.0);
    let lossy = run(0.2);
    assert_eq!(
        loss_free.clustering.assignment, lossy.clustering.assignment,
        "ARQ must make the lossy run converge to the loss-free clusters"
    );
    // The recovery was real: retransmissions happened, and none of the link
    // transfers exhausted its retry budget (no livelock, no lost handshake).
    assert_eq!(loss_free.metrics.counter("net.retx"), 0);
    assert!(lossy.metrics.counter("net.retx") > 0);
    assert_eq!(lossy.metrics.counter("net.timeout"), 0);
}

#[test]
fn elink_survives_crash_of_ten_percent_of_nodes_mid_run() {
    let topo = Topology::grid(8, 8);
    let n = topo.n();
    let features: Vec<Feature> = (0..n)
        .map(|v| Feature::scalar(if v % 8 < 4 { 0.0 } else { 100.0 }))
        .collect();
    let network = SimNetwork::new(topo.clone());
    let delta = 10.0;

    // Reference run to find the loss-free completion time, then crash ≥10%
    // of the nodes (spread over the grid, never recovering) at its midpoint.
    let reference = run_implicit(
        &network,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(delta),
    );
    let crash_at = reference.elapsed / 2;
    assert!(crash_at > 0, "reference run finished instantly");
    let crashed: Vec<usize> = (0..7).map(|i| (i * 9 + 4) % n).collect();
    assert!(
        crashed.len() * 10 >= n,
        "need at least 10% of nodes crashed"
    );
    let mut link = LossyLink::new(1, 1);
    for &c in &crashed {
        link = link.with_crash(c, crash_at, None);
    }

    // Termination under crashes = this call returns (the implicit-mode
    // timer schedule is finite; the engine also has an event backstop).
    let outcome = run_with_link(
        &network,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(delta),
        SignalMode::Implicit,
        link,
        3,
    );

    // Over every surviving connected component, the clustering must still be
    // made of valid δ-clusters: restrict each cluster to the component and
    // split it at crash sites; every surviving piece must be δ-compact.
    let alive: Vec<usize> = (0..n).filter(|v| !crashed.contains(v)).collect();
    let components = topo.graph().induced_components(&alive);
    assert!(!components.is_empty());
    let mut checked_pieces = 0usize;
    for comp in &components {
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for cid in 0..outcome.clustering.cluster_count() {
            let members: Vec<usize> = comp
                .iter()
                .copied()
                .filter(|&v| outcome.clustering.cluster_of(v) == cid)
                .collect();
            if !members.is_empty() {
                clusters.extend(topo.graph().induced_components(&members));
            }
        }
        // The pieces partition the component.
        let mut covered: Vec<usize> = clusters.iter().flatten().copied().collect();
        covered.sort_unstable();
        let mut expected = comp.clone();
        expected.sort_unstable();
        assert_eq!(
            covered, expected,
            "cluster pieces do not partition the component"
        );
        for piece in &clusters {
            checked_pieces += 1;
            for (a, &i) in piece.iter().enumerate() {
                for &j in &piece[a + 1..] {
                    let d = Absolute.distance(&features[i], &features[j]);
                    assert!(
                        d <= delta + 1e-9,
                        "surviving piece not δ-compact: d({i}, {j}) = {d}"
                    );
                }
            }
        }
    }
    assert!(checked_pieces >= 2, "degenerate crash scenario");
}
