//! Differential property tests for the flow-level link model.
//!
//! Three contracts pin `FairShareLink` to the per-message substrate:
//!
//! 1. **Degenerate equivalence (byte-identical)** — with effectively
//!    infinite capacity no transfer ever contends, every service takes the
//!    one-tick floor, and a broadcast-only run is *byte-identical* (same
//!    `JsonlTrace` stream) to `AsyncUniformLink::new(1, 1)` — the
//!    zero-jitter per-message model with the same fixed delay. This works
//!    because an uncontended flow's tentative-completion event occupies
//!    exactly the queue slot the per-message `Deliver` would have, and is
//!    never invalidated (see `netsim::flow`).
//! 2. **Degenerate equivalence (full protocol)** — the real ELink growth
//!    protocol also unicasts, and multi-hop unicast is the one place the
//!    two substrates schedule differently: the per-message path walks the
//!    whole route at send time (the final `Deliver` gets an *early*
//!    scheduler sequence number), while the flow path is store-and-forward
//!    (the final delivery is enqueued by the last relay, a *late* sequence
//!    number). Timing, billing and protocol outcomes are identical — only
//!    the order of same-tick trace lines can differ — so the full-protocol
//!    test compares traces as per-tick sorted sequences and everything
//!    else (`CostBook`, elapsed, clustering) exactly.
//! 3. **Backend independence** — under real contention (finite capacity,
//!    invalidations and reschedules in play) Heap and Calendar schedulers
//!    must still agree event-for-event, the same guarantee the scheduler
//!    differential suite pins for per-message links.

use elink_core::protocol::{ElinkNode, SignalMode};
use elink_core::quadinfo::QuadInfo;
use elink_core::{Clustering, ElinkConfig};
use elink_metric::{Absolute, Feature};
use elink_netsim::{
    AsyncUniformLink, CostBook, Ctx, FairShareLink, JsonlTrace, LinkModel, Protocol, SchedulerKind,
    SimNetwork, Simulator,
};
use elink_topology::Topology;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Everything observable about one run: the trace byte stream, the message
/// bill, the quiescence time and the extracted clustering.
struct RunView {
    trace: Vec<u8>,
    costs: CostBook,
    elapsed: u64,
    assignment: Vec<usize>,
    roots: Vec<usize>,
}

fn run_traced(
    topology: &Topology,
    features: &[Feature],
    config: ElinkConfig,
    mode: SignalMode,
    link: Box<dyn LinkModel>,
    seed: u64,
    kind: SchedulerKind,
) -> RunView {
    let n = topology.n();
    let quad = Arc::new(QuadInfo::build(topology));
    let metric = Arc::new(Absolute);
    let nodes: Vec<ElinkNode> = (0..n)
        .map(|id| {
            ElinkNode::new(
                id,
                n,
                features[id].clone(),
                Arc::clone(&metric) as _,
                config,
                mode,
                Arc::clone(&quad),
            )
        })
        .collect();
    let network = SimNetwork::new(topology.clone());
    let mut sim = Simulator::new(network, link, seed, nodes);
    sim.set_scheduler(kind);
    let sink = Arc::new(Mutex::new(JsonlTrace::new(Vec::<u8>::new())));
    sim.set_trace(Arc::clone(&sink));
    let elapsed = sim.run_to_completion();
    let states: Vec<_> = sim
        .nodes()
        .iter()
        .enumerate()
        .map(|(id, node)| node.cluster_state(id))
        .collect();
    let clustering = Clustering::from_node_states(&states, topology, &Absolute);
    let costs = sim.costs().clone();
    drop(sim);
    let trace = Arc::try_unwrap(sink)
        .expect("simulator dropped its trace handle")
        .into_inner()
        .unwrap()
        .into_inner();
    RunView {
        trace,
        costs,
        elapsed,
        roots: clustering.clusters.iter().map(|c| c.root).collect(),
        assignment: clustering.assignment,
    }
}

/// A broadcast-only flood: several sources each flood a distinct token and
/// every node rebroadcasts each token the first time it sees it. No
/// unicast, so the flow substrate's store-and-forward relaying never runs
/// and the byte-identical degenerate claim applies to the whole trace.
struct MultiFlood {
    sources: Vec<u32>,
    seen: Vec<bool>,
}

impl Protocol for MultiFlood {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        let me = ctx.id() as u32;
        if self.sources.contains(&me) {
            self.seen[me as usize] = true;
            // Vary the payload size so billing (scalars × hops) is
            // exercised, not just event ordering.
            ctx.broadcast_neighbors(&me, "flood", 1 + (me as u64 % 3));
        }
    }

    fn on_message(&mut self, _from: usize, token: u32, ctx: &mut Ctx<'_, u32>) {
        if !self.seen[token as usize] {
            self.seen[token as usize] = true;
            ctx.broadcast_neighbors(&token, "flood", 1 + (token as u64 % 3));
        }
    }
}

/// Runs the multi-source flood under `link` and returns the raw trace
/// bytes plus the cost book.
fn run_flood(
    topology: &Topology,
    sources: &[u32],
    link: Box<dyn LinkModel>,
    seed: u64,
) -> (Vec<u8>, CostBook, u64) {
    let n = topology.n();
    let nodes = (0..n)
        .map(|_| MultiFlood {
            sources: sources.to_vec(),
            seen: vec![false; n],
        })
        .collect();
    let network = SimNetwork::new(topology.clone());
    let mut sim = Simulator::new(network, link, seed, nodes);
    let sink = Arc::new(Mutex::new(JsonlTrace::new(Vec::<u8>::new())));
    sim.set_trace(Arc::clone(&sink));
    let elapsed = sim.run_to_completion();
    let costs = sim.costs().clone();
    drop(sim);
    let trace = Arc::try_unwrap(sink)
        .expect("simulator dropped its trace handle")
        .into_inner()
        .unwrap()
        .into_inner();
    (trace, costs, elapsed)
}

/// Pulls the tick out of a `JsonlTrace` line (`{"t":N,...}`).
fn parse_tick(line: &str) -> u64 {
    line.strip_prefix("{\"t\":")
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|num| num.parse().ok())
        .unwrap_or_else(|| panic!("trace line missing tick: {line}"))
}

/// Reorders trace lines within each tick into a canonical (sorted) order.
/// Ticks themselves stay in stream order; only same-tick permutations —
/// the one divergence multi-hop unicast store-and-forward can introduce —
/// are normalised away.
fn tick_sorted(trace: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(trace);
    let mut lines: Vec<(u64, String)> = text
        .lines()
        .map(|l| (parse_tick(l), l.to_string()))
        .collect();
    lines.sort();
    lines.into_iter().map(|(_, l)| l).collect()
}

/// Asserts two trace byte streams are identical, labelling any divergence
/// with the first differing line.
fn assert_traces_identical(a: &[u8], b: &[u8], label: &str) -> Result<(), TestCaseError> {
    if a != b {
        let ta = String::from_utf8_lossy(a);
        let tb = String::from_utf8_lossy(b);
        for (i, (la, lb)) in ta.lines().zip(tb.lines()).enumerate() {
            prop_assert_eq!(la, lb, "{}: trace line {} diverges", label, i);
        }
        prop_assert_eq!(
            ta.lines().count(),
            tb.lines().count(),
            "{}: trace lengths diverge",
            label
        );
    }
    Ok(())
}

/// Asserts two views agree on every observable, comparing traces modulo
/// same-tick ordering (see the module docs for why unicast permits that).
fn assert_equivalent_modulo_tick_order(
    a: &RunView,
    b: &RunView,
    label: &str,
) -> Result<(), TestCaseError> {
    let (sa, sb) = (tick_sorted(&a.trace), tick_sorted(&b.trace));
    for (i, (la, lb)) in sa.iter().zip(sb.iter()).enumerate() {
        prop_assert_eq!(la, lb, "{}: tick-sorted trace line {} diverges", label, i);
    }
    prop_assert_eq!(sa.len(), sb.len(), "{}: trace lengths diverge", label);
    prop_assert_eq!(&a.costs, &b.costs, "{}: cost books diverge", label);
    prop_assert_eq!(a.elapsed, b.elapsed, "{}: elapsed diverges", label);
    prop_assert_eq!(
        &a.assignment,
        &b.assignment,
        "{}: assignments diverge",
        label
    );
    prop_assert_eq!(&a.roots, &b.roots, "{}: roots diverge", label);
    Ok(())
}

/// Asserts two views are byte-identical on every observable, labelling any
/// divergence with the first differing trace line.
fn assert_equivalent(a: &RunView, b: &RunView, label: &str) -> Result<(), TestCaseError> {
    assert_traces_identical(&a.trace, &b.trace, label)?;
    prop_assert_eq!(&a.costs, &b.costs, "{}: cost books diverge", label);
    prop_assert_eq!(a.elapsed, b.elapsed, "{}: elapsed diverges", label);
    prop_assert_eq!(
        &a.assignment,
        &b.assignment,
        "{}: assignments diverge",
        label
    );
    prop_assert_eq!(&a.roots, &b.roots, "{}: roots diverge", label);
    Ok(())
}

fn synthetic_features(n: usize, seed: u64, scale: f64) -> Vec<Feature> {
    (0..n)
        .map(|v| {
            let h = (v as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            let x = (h >> 11) as f64 / (1u64 << 53) as f64;
            Feature::scalar(x * scale)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Capacity = ∞, broadcast-only traffic ⇒ byte-identical to
    /// `AsyncUniformLink` with zero jitter (`min == max == 1`): the traced
    /// event stream, compared byte for byte, cannot tell the two models
    /// apart.
    #[test]
    fn unlimited_flow_is_byte_identical_for_broadcast_traffic(
        n in 8usize..48,
        topo_seed in 0u64..300,
        seed in 0u64..64,
        extra_sources in 0u32..3,
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let mut sources = vec![0u32];
        for s in 0..extra_sources {
            sources.push(((s + 1) as usize * n / 4) as u32 % n as u32);
        }
        sources.dedup();
        let (ft, fc, fe) = run_flood(
            &topology, &sources, FairShareLink::unlimited().into(), seed,
        );
        let (at, ac, ae) = run_flood(
            &topology, &sources, AsyncUniformLink::new(1, 1).into(), seed,
        );
        assert_traces_identical(&ft, &at, "flood flow-vs-async")?;
        prop_assert_eq!(&fc, &ac, "flood: cost books diverge");
        prop_assert_eq!(fe, ae, "flood: elapsed diverges");
    }

    /// Capacity = ∞, full ELink growth protocol ⇒ equivalent to
    /// `AsyncUniformLink` with zero jitter on every observable. The growth
    /// protocol unicasts (quadtree phase-1/phase-2 waves), and multi-hop
    /// unicast is store-and-forward under the flow model, so same-tick
    /// trace lines may interleave differently — traces are compared as
    /// per-tick sorted sequences; costs, elapsed time and the final
    /// clustering must match exactly.
    #[test]
    fn unlimited_flow_equals_async_jitter_zero(
        n in 8usize..48,
        topo_seed in 0u64..300,
        delta_frac in 0.1f64..1.0,
        seed in 0u64..64,
        explicit in proptest::bool::weighted(0.5),
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let scale = 100.0;
        let features = synthetic_features(n, topo_seed, scale);
        let config = ElinkConfig::for_delta((scale * delta_frac).max(1e-6));
        let mode = if explicit { SignalMode::Explicit } else { SignalMode::Unordered };
        let flow = run_traced(
            &topology, &features, config, mode,
            FairShareLink::unlimited().into(), seed, SchedulerKind::Calendar,
        );
        let per_message = run_traced(
            &topology, &features, config, mode,
            AsyncUniformLink::new(1, 1).into(), seed, SchedulerKind::Calendar,
        );
        assert_equivalent_modulo_tick_order(&flow, &per_message, "flow-vs-async")?;
    }

    /// Finite capacity ⇒ real contention, invalidated predictions and
    /// rescheduled completions — Heap and Calendar must still agree on
    /// every event.
    #[test]
    fn contended_flow_agrees_across_backends(
        n in 8usize..40,
        topo_seed in 0u64..200,
        delta_frac in 0.1f64..1.0,
        seed in 0u64..64,
        capacity in 1u64..6,
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let scale = 100.0;
        let features = synthetic_features(n, topo_seed, scale);
        let config = ElinkConfig::for_delta((scale * delta_frac).max(1e-6));
        let run = |kind| {
            run_traced(
                &topology, &features, config, SignalMode::Explicit,
                FairShareLink::new(capacity).into(), seed, kind,
            )
        };
        assert_equivalent(&run(SchedulerKind::Heap), &run(SchedulerKind::Calendar), "contended")?;
    }
}
