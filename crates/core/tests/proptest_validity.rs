//! Property tests: every ELink mode always emits a valid δ-clustering
//! (Definition 1) on arbitrary topologies, features and δ.

use elink_core::{
    run_explicit, run_implicit, run_unordered, validate_delta_clustering, ElinkConfig,
};
use elink_datasets::TerrainDataset;
use elink_metric::{Absolute, Feature};
use elink_netsim::{DelayModel, SimNetwork};
use elink_topology::Topology;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random topology + random scalar features + random δ: all three
    /// modes produce valid clusterings, and the unordered ablation never
    /// beats the ordered variants by more than noise.
    #[test]
    fn all_modes_always_valid(
        n in 8usize..60,
        topo_seed in 0u64..500,
        feat_scale in 1.0f64..100.0,
        delta_frac in 0.05f64..1.0,
        async_seed in 0u64..100,
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        // Features: pseudo-random but deterministic in the seeds.
        let features: Vec<Feature> = (0..n)
            .map(|v| {
                let h = (v as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(topo_seed);
                let x = (h >> 11) as f64 / (1u64 << 53) as f64;
                Feature::scalar(x * feat_scale)
            })
            .collect();
        let delta = (feat_scale * delta_frac).max(1e-6);
        let network = SimNetwork::new(topology.clone());
        let config = ElinkConfig::for_delta(delta);

        let imp = run_implicit(&network, &features, Arc::new(Absolute), config);
        validate_delta_clustering(&imp.clustering, &topology, &features, &Absolute, delta)
            .map_err(|e| TestCaseError::fail(format!("implicit: {e}")))?;

        let exp = run_explicit(
            &network,
            &features,
            Arc::new(Absolute),
            config,
            DelayModel::Async { min: 1, max: 5 },
            async_seed,
        );
        validate_delta_clustering(&exp.clustering, &topology, &features, &Absolute, delta)
            .map_err(|e| TestCaseError::fail(format!("explicit: {e}")))?;

        let uno = run_unordered(
            &network,
            &features,
            Arc::new(Absolute),
            config,
            DelayModel::Sync,
            0,
        );
        validate_delta_clustering(&uno.clustering, &topology, &features, &Absolute, delta)
            .map_err(|e| TestCaseError::fail(format!("unordered: {e}")))?;

        // Message complexity sanity: O(N) with the paper's constants —
        // d(c+1)N expands plus synchronization; use a generous envelope.
        let d = topology.graph().max_degree() as u64;
        let c = config.max_switches as u64;
        let envelope = d * (c + 2) * (n as u64) * 8 + 1000;
        prop_assert!(
            imp.costs.total_packets() <= envelope,
            "implicit packets {} above O(N) envelope {envelope}",
            imp.costs.total_packets()
        );
        prop_assert!(
            exp.costs.total_packets() <= envelope,
            "explicit packets {} above O(N) envelope {envelope}",
            exp.costs.total_packets()
        );
    }

    /// Terrain instances: implicit and explicit stay quality-equivalent on
    /// synchronous networks after the start-alignment fix.
    #[test]
    fn implicit_explicit_quality_equivalence(seed in 0u64..40) {
        let data = TerrainDataset::generate(80, 5, 0.55, seed);
        let features = data.features();
        let delta = 400.0;
        let network = SimNetwork::new(data.topology().clone());
        let config = ElinkConfig::for_delta(delta);
        let imp = run_implicit(&network, &features, Arc::new(Absolute), config);
        let exp = run_explicit(
            &network,
            &features,
            Arc::new(Absolute),
            config,
            DelayModel::Sync,
            0,
        );
        let (a, b) = (
            imp.clustering.cluster_count() as f64,
            exp.clustering.cluster_count() as f64,
        );
        prop_assert!(
            (a - b).abs() <= 0.25 * a.max(b) + 2.0,
            "implicit {a} vs explicit {b} clusters"
        );
    }
}
