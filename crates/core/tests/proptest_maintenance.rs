//! Property tests for the §6 maintenance state machine: arbitrary update
//! streams (with interleaved failures) never corrupt the cluster state.

use elink_core::{run_implicit, ElinkConfig, MaintenanceSim};
use elink_metric::{Absolute, Feature};
use elink_netsim::SimNetwork;
use elink_topology::Topology;
use proptest::prelude::*;
use std::sync::Arc;

fn build_sim(n: usize, topo_seed: u64, delta: f64, slack: f64) -> (MaintenanceSim, usize) {
    let topology = Topology::random_synthetic(n, topo_seed);
    let features: Vec<Feature> = (0..n)
        .map(|v| {
            let h = (v as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(topo_seed);
            Feature::scalar(((h >> 11) as f64 / (1u64 << 53) as f64) * 100.0)
        })
        .collect();
    let network = SimNetwork::new(topology.clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(delta - 2.0 * slack),
    );
    let sim = MaintenanceSim::new(
        &outcome.clustering,
        Arc::new(topology),
        Arc::new(Absolute),
        features,
        delta,
        slack,
    );
    (sim, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random update streams: every node keeps a self-consistent root, the
    /// message bill is monotone, and cluster counts stay in [1, n].
    #[test]
    fn random_streams_keep_state_consistent(
        topo_seed in 0u64..200,
        stream in proptest::collection::vec((0usize..30, 0.0f64..120.0), 1..80),
        slack_frac in 0.0f64..0.45,
    ) {
        let n = 30;
        let delta = 20.0;
        let slack = slack_frac * delta;
        let (mut sim, _) = build_sim(n, topo_seed, delta, slack);
        let mut prev_cost = 0;
        for (node, value) in stream {
            sim.update(node, Feature::scalar(value));
            let cost = sim.costs().total_cost();
            prop_assert!(cost >= prev_cost, "message bill went backwards");
            prev_cost = cost;
            let k = sim.cluster_count();
            prop_assert!((1..=n).contains(&k), "cluster count {k} out of range");
            // Self-consistency: a node's root is its own root.
            for v in 0..n {
                let r = sim.root_of(v);
                prop_assert_eq!(sim.root_of(r), r, "root of {} is not a fixpoint", v);
            }
        }
    }

    /// Interleaved failures: the surviving nodes always remain clustered
    /// with self-consistent roots, and failed nodes stay out.
    #[test]
    fn failures_never_corrupt_state(
        topo_seed in 0u64..100,
        ops in proptest::collection::vec((0usize..25, 0.0f64..120.0, proptest::bool::weighted(0.15)), 1..60),
    ) {
        let n = 25;
        let (mut sim, _) = build_sim(n, topo_seed, 20.0, 1.0);
        for (node, value, fail) in ops {
            if sim.is_failed(node) {
                continue;
            }
            if fail {
                sim.fail_node(node);
            } else {
                sim.update(node, Feature::scalar(value));
            }
            for v in 0..n {
                if sim.is_failed(v) {
                    continue;
                }
                let r = sim.root_of(v);
                prop_assert!(!sim.is_failed(r) || r == v,
                    "live node {} roots at failed node {}", v, r);
            }
        }
    }
}
