//! The paper's worked examples, reproduced exactly.
//!
//! * Fig 3: the 5-node communication graph whose minimal δ-clusterings have
//!   2 clusters at δ = 5 (checked against the exhaustive optimum in
//!   `elink-baselines`; here we check ELink finds a valid 2-clustering).
//! * Fig 5: sentinel D's cluster expansion at δ = 6 — D recruits B, E, F;
//!   F extends to G; B extends to A but not C (d(F_D, F_C) = 4 > δ/2 = 3).

use elink_core::protocol::{ElinkMsg, ElinkNode, SignalMode};
use elink_core::quadinfo::QuadInfo;
use elink_core::{run_implicit, validate_delta_clustering, ElinkConfig};
use elink_metric::{DistanceMatrix, Feature, Metric, TableMetric};
use elink_netsim::{Ctx, DelayModel, Protocol, SimNetwork, Simulator};
use elink_topology::{CommGraph, Point, Rect, Topology};
use std::sync::Arc;

/// Fig 5's topology: nodes A..G (0..6) arranged as in the figure, with the
/// communication edges implied by the expansion narrative:
/// D–F, D–B, D–E, F–G, B–A, B–C.
fn fig5_topology() -> Topology {
    let mut g = CommGraph::new(7);
    let edges = [(3, 5), (3, 1), (3, 4), (5, 6), (1, 0), (1, 2)];
    for (a, b) in edges {
        g.add_edge(a, b);
    }
    let positions = vec![
        Point::new(0.0, 2.0), // A
        Point::new(1.0, 2.0), // B
        Point::new(1.0, 3.0), // C
        Point::new(2.0, 2.0), // D (sentinel)
        Point::new(3.0, 2.0), // E
        Point::new(2.0, 1.0), // F
        Point::new(3.0, 1.0), // G
    ];
    Topology::from_parts(positions, g, Rect::new(-0.5, -0.5, 3.6, 3.6))
}

/// Fig 5a's distances to sentinel D: A=2, B=1, C=4, E=2, F=1, G=2 (values
/// within δ/2 = 3 except C). Distances among non-D pairs are filled in the
/// loosest metric-consistent way (they do not affect D's expansion, which
/// only compares against F_D).
fn fig5_metric() -> TableMetric {
    let to_d = [2.0, 1.0, 4.0, 0.0, 2.0, 1.0, 2.0]; // A B C D E F G
    let mut dm = DistanceMatrix::zeros(7);
    for i in 0..7 {
        for j in (i + 1)..7 {
            if i == 3 {
                dm.set(i, j, to_d[j]);
            } else if j == 3 {
                dm.set(i, j, to_d[i]);
            } else {
                // Metric-consistent filler: |d(i,D) − d(j,D)| ≤ d ≤ sum.
                dm.set(i, j, to_d[i] + to_d[j]);
            }
        }
    }
    TableMetric::new(dm)
}

/// A harness protocol that only runs the expansion of Fig 16 from one
/// designated sentinel (no quadtree scheduling), mirroring the figure.
struct SingleSentinel {
    inner: ElinkNode,
    is_sentinel: bool,
}

impl Protocol for SingleSentinel {
    type Msg = ElinkMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ElinkMsg>) {
        if self.is_sentinel {
            // Deliver a level-0 schedule tick to the sentinel only.
            ctx.set_timer(0, 0);
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<'_, ElinkMsg>) {
        self.inner.on_timer(timer, ctx);
    }

    fn on_message(&mut self, from: usize, msg: ElinkMsg, ctx: &mut Ctx<'_, ElinkMsg>) {
        self.inner.on_message(from, msg, ctx);
    }
}

#[test]
fn fig5_expansion_from_sentinel_d() {
    let topology = fig5_topology();
    let metric: Arc<dyn Metric> = Arc::new(fig5_metric());
    let features: Vec<Feature> = (0..7).map(|i| Feature::scalar(i as f64)).collect();
    let quad = Arc::new(QuadInfo::build(&topology));
    let config = ElinkConfig::for_delta(6.0);
    let nodes: Vec<SingleSentinel> = (0..7)
        .map(|id| SingleSentinel {
            inner: ElinkNode::new(
                id,
                7,
                features[id].clone(),
                Arc::clone(&metric),
                config,
                SignalMode::Implicit,
                Arc::clone(&quad),
            ),
            is_sentinel: id == 3, // D
        })
        .collect();
    let network = SimNetwork::new(topology);
    let mut sim = Simulator::new(network, DelayModel::Sync, 0, nodes);
    sim.run_to_completion();

    // Fig 5d: the final cluster C1 = {A, B, D, E, F, G}; C stays out.
    let in_cluster: Vec<bool> = sim
        .nodes()
        .iter()
        .map(|n| n.inner.clustered && n.inner.root == 3)
        .collect();
    assert_eq!(
        in_cluster,
        vec![true, true, false, true, true, true, true],
        "cluster membership diverges from Fig 5d"
    );
    assert!(!sim.nodes()[2].inner.clustered, "C must remain unclustered");

    // The narrative's tree: D recruits B, E, F directly; F recruits G;
    // B recruits A.
    assert_eq!(sim.nodes()[1].inner.parent, 3); // B <- D
    assert_eq!(sim.nodes()[4].inner.parent, 3); // E <- D
    assert_eq!(sim.nodes()[5].inner.parent, 3); // F <- D
    assert_eq!(sim.nodes()[6].inner.parent, 5); // G <- F
    assert_eq!(sim.nodes()[0].inner.parent, 1); // A <- B
}

#[test]
fn fig3_elink_matches_minimal_clustering() {
    // Fig 3: 5 nodes a..e; edges a-b, b-c, b-d, c-d, d-e, c-e; c–d and c–e
    // exceed δ = 5, everything else is within. Minimal clusterings have 2
    // clusters; ELink must produce a valid clustering with ≤ 3 (it can
    // split sub-optimally but not violate validity).
    let mut g = CommGraph::new(5);
    for (a, b) in [(0, 1), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)] {
        g.add_edge(a, b);
    }
    let positions = vec![
        Point::new(0.0, 1.0),
        Point::new(1.0, 1.0),
        Point::new(2.0, 2.0),
        Point::new(2.0, 0.0),
        Point::new(3.0, 1.0),
    ];
    let topology = Topology::from_parts(positions, g, Rect::new(-0.5, -0.5, 3.6, 2.6));
    // A triangle-inequality-consistent completion of Fig 3b (the δ/2
    // admission rule presupposes a metric): c sits 4 away from a and b and
    // 6 away from d and e; all other pairs are 2 apart.
    let mut dm = DistanceMatrix::zeros(5);
    for i in 0..5 {
        for j in (i + 1)..5 {
            dm.set(i, j, 2.0);
        }
    }
    dm.set(0, 2, 4.0); // a–c
    dm.set(1, 2, 4.0); // b–c
    dm.set(2, 3, 6.0); // c–d
    dm.set(2, 4, 6.0); // c–e
    let features: Vec<Feature> = (0..5).map(|i| Feature::scalar(i as f64)).collect();
    elink_metric::check_metric_axioms(&features, &TableMetric::new(dm.clone()), 1e-9)
        .expect("Fig 3 distances must form a metric");
    let metric: Arc<dyn Metric> = Arc::new(TableMetric::new(dm));
    let network = SimNetwork::new(topology.clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::clone(&metric),
        ElinkConfig::for_delta(5.0),
    );
    validate_delta_clustering(
        &outcome.clustering,
        &topology,
        &features,
        metric.as_ref(),
        5.0,
    )
    .unwrap();
    let k = outcome.clustering.cluster_count();
    assert!((2..=3).contains(&k), "ELink produced {k} clusters on Fig 3");
}
