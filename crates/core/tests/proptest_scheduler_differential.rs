//! Differential property tests for the event-scheduler backends.
//!
//! The calendar-queue refactor's contract is *observational equivalence*:
//! for any topology, feature field, signalling mode, link model and seed,
//! [`SchedulerKind::Heap`] and [`SchedulerKind::Calendar`] must produce
//! byte-identical runs — the same `CostBook`, the same assignments, and
//! the same event-by-event `JsonlTrace` stream. These tests drive the
//! simulator under both backends, including through the lossy-link + ARQ
//! stack where retransmission timers and per-tick drop draws make the
//! event queue busiest, and diff the full trace logs.

use elink_core::protocol::{ElinkNode, SignalMode};
use elink_core::quadinfo::QuadInfo;
use elink_core::{Clustering, ElinkConfig};
use elink_metric::{Absolute, Feature};
use elink_netsim::{
    ArqConfig, CostBook, DelayModel, JsonlTrace, LinkModel, LossyLink, SchedulerKind, SimNetwork,
    Simulator,
};
use elink_topology::Topology;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Everything observable about one run: the trace byte stream, the message
/// bill, the quiescence time and the extracted clustering.
struct RunView {
    trace: Vec<u8>,
    costs: CostBook,
    elapsed: u64,
    assignment: Vec<usize>,
    roots: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn run_traced(
    topology: &Topology,
    features: &[Feature],
    config: ElinkConfig,
    mode: SignalMode,
    link: Box<dyn LinkModel>,
    seed: u64,
    arq: Option<ArqConfig>,
    kind: SchedulerKind,
) -> RunView {
    let n = topology.n();
    let quad = Arc::new(QuadInfo::build(topology));
    let metric = Arc::new(Absolute);
    let nodes: Vec<ElinkNode> = (0..n)
        .map(|id| {
            ElinkNode::new(
                id,
                n,
                features[id].clone(),
                Arc::clone(&metric) as _,
                config,
                mode,
                Arc::clone(&quad),
            )
        })
        .collect();
    let network = SimNetwork::new(topology.clone());
    let mut sim = Simulator::new(network, link, seed, nodes);
    sim.set_scheduler(kind);
    let sink = Arc::new(Mutex::new(JsonlTrace::new(Vec::<u8>::new())));
    sim.set_trace(Arc::clone(&sink));
    if let Some(arq_config) = arq {
        sim.enable_arq(arq_config);
    }
    let elapsed = sim.run_to_completion();
    let states: Vec<_> = sim
        .nodes()
        .iter()
        .enumerate()
        .map(|(id, node)| node.cluster_state(id))
        .collect();
    let clustering = Clustering::from_node_states(&states, topology, &Absolute);
    let costs = sim.costs().clone();
    drop(sim);
    let trace = Arc::try_unwrap(sink)
        .expect("simulator dropped its trace handle")
        .into_inner()
        .unwrap()
        .into_inner();
    RunView {
        trace,
        costs,
        elapsed,
        roots: clustering.clusters.iter().map(|c| c.root).collect(),
        assignment: clustering.assignment,
    }
}

/// Asserts the two backends' views are byte-identical, labelling any
/// divergence with the first differing trace line.
fn assert_equivalent(heap: &RunView, calendar: &RunView, label: &str) -> Result<(), TestCaseError> {
    if heap.trace != calendar.trace {
        let a = String::from_utf8_lossy(&heap.trace);
        let b = String::from_utf8_lossy(&calendar.trace);
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            prop_assert_eq!(la, lb, "{}: trace line {} diverges", label, i);
        }
        prop_assert_eq!(
            a.lines().count(),
            b.lines().count(),
            "{}: trace lengths diverge",
            label
        );
    }
    prop_assert_eq!(
        &heap.costs,
        &calendar.costs,
        "{}: cost books diverge",
        label
    );
    prop_assert_eq!(
        heap.elapsed,
        calendar.elapsed,
        "{}: elapsed diverges",
        label
    );
    prop_assert_eq!(
        &heap.assignment,
        &calendar.assignment,
        "{}: assignments diverge",
        label
    );
    prop_assert_eq!(&heap.roots, &calendar.roots, "{}: roots diverge", label);
    Ok(())
}

fn synthetic_features(n: usize, seed: u64, scale: f64) -> Vec<Feature> {
    (0..n)
        .map(|v| {
            let h = (v as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            let x = (h >> 11) as f64 / (1u64 << 53) as f64;
            Feature::scalar(x * scale)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Loss-free differential: random topology, features, δ, mode and
    /// async delays — Heap and Calendar agree byte-for-byte.
    #[test]
    fn backends_agree_loss_free(
        n in 8usize..48,
        topo_seed in 0u64..300,
        delta_frac in 0.1f64..1.0,
        seed in 0u64..64,
        mode_pick in 0usize..3,
        sync in proptest::bool::weighted(0.5),
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let scale = 100.0;
        let features = synthetic_features(n, topo_seed, scale);
        let config = ElinkConfig::for_delta((scale * delta_frac).max(1e-6));
        let mode = [SignalMode::Implicit, SignalMode::Explicit, SignalMode::Unordered][mode_pick];
        // Implicit mode assumes a synchronous network.
        let delay = if sync || mode == SignalMode::Implicit {
            DelayModel::Sync
        } else {
            DelayModel::Async { min: 1, max: 5 }
        };
        let run = |kind| {
            run_traced(&topology, &features, config, mode, delay.into(), seed, None, kind)
        };
        assert_equivalent(&run(SchedulerKind::Heap), &run(SchedulerKind::Calendar), "loss-free")?;
    }

    /// Lossy + ARQ differential: the reliable-delivery sublayer floods the
    /// queue with retransmission timers and acks; the backends must still
    /// agree on every event.
    #[test]
    fn backends_agree_under_loss_with_arq(
        n in 8usize..40,
        topo_seed in 0u64..200,
        delta_frac in 0.1f64..1.0,
        seed in 0u64..64,
        drop_centi in 5u32..30,
    ) {
        let topology = Topology::random_synthetic(n, topo_seed);
        let scale = 100.0;
        let features = synthetic_features(n, topo_seed, scale);
        let config = ElinkConfig::for_delta((scale * delta_frac).max(1e-6));
        let drop = f64::from(drop_centi) / 100.0;
        let run = |kind| {
            run_traced(
                &topology,
                &features,
                config,
                SignalMode::Explicit,
                LossyLink::new(1, 3).with_drop_prob(drop).into(),
                seed,
                Some(ArqConfig::default()),
                kind,
            )
        };
        assert_equivalent(&run(SchedulerKind::Heap), &run(SchedulerKind::Calendar), "lossy+arq")?;
    }
}
