//! Integration tests: ELink on the paper's data sets and the Theorem 2/3
//! complexity claims.

use elink_core::{
    run_explicit, run_implicit, run_unordered, validate_delta_clustering, ElinkConfig,
};
use elink_datasets::{TaoDataset, TaoParams, TerrainDataset};
use elink_metric::{Absolute, DistanceMatrix, Feature, Metric};
use elink_netsim::{DelayModel, SimNetwork};
use elink_topology::Topology;
use std::sync::Arc;

fn tao_small() -> TaoDataset {
    TaoDataset::generate(
        TaoParams {
            rows: 6,
            cols: 9,
            day_len: 24,
            days: 12,
        },
        5,
    )
}

/// A mid-quantile of all pairwise feature distances — a δ that forces a
/// non-trivial clustering.
fn quantile_delta(features: &[Feature], metric: &dyn Metric, q: f64) -> f64 {
    let dm = DistanceMatrix::from_features(features, metric);
    let n = features.len();
    let mut ds = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            ds.push(dm.get(i, j));
        }
    }
    ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ds[((ds.len() - 1) as f64 * q) as usize].max(1e-9)
}

#[test]
fn elink_on_tao_produces_valid_compact_clustering() {
    let data = tao_small();
    let features = data.features();
    let metric = data.metric();
    let delta = quantile_delta(&features, &metric, 0.5);
    let net = SimNetwork::new(data.topology().clone());
    let outcome = run_implicit(
        &net,
        &features,
        Arc::new(metric.clone()),
        ElinkConfig::for_delta(delta),
    );
    validate_delta_clustering(
        &outcome.clustering,
        net.topology(),
        &features,
        &metric,
        delta,
    )
    .unwrap();
    let k = outcome.clustering.cluster_count();
    // Spatially correlated data at the median δ should cluster into fewer
    // groups than nodes (δ/2 admission keeps clusters tight, so the count
    // stays well above the number of latent zones).
    assert!(
        (2..=40).contains(&k),
        "cluster count {k} out of expected band"
    );

    // Larger δ must not fragment more.
    let delta_hi = quantile_delta(&features, &metric, 0.9);
    let outcome_hi = run_implicit(
        &net,
        &features,
        Arc::new(metric.clone()),
        ElinkConfig::for_delta(delta_hi),
    );
    assert!(
        outcome_hi.clustering.cluster_count() <= k,
        "quality must improve with δ: {} at q=0.9 vs {k} at q=0.5",
        outcome_hi.clustering.cluster_count()
    );
}

#[test]
fn implicit_and_explicit_agree_on_tao_sync() {
    let data = tao_small();
    let features = data.features();
    let metric = Arc::new(data.metric().clone());
    let delta = quantile_delta(&features, metric.as_ref(), 0.5);
    let config = ElinkConfig::for_delta(delta);
    let net = SimNetwork::new(data.topology().clone());
    let imp = run_implicit(&net, &features, Arc::clone(&metric) as _, config);
    let exp = run_explicit(&net, &features, metric as _, config, DelayModel::Sync, 0);
    // §8.4 says the two variants "output the same clusters". That holds
    // exactly when within-level expansions do not race (see the runner unit
    // test on a path graph); on larger grids the start-message arrival
    // order can flip contested nodes, so we assert quality equivalence:
    // cluster counts within 10% and both valid (validity is checked by
    // elink_on_tao_produces_valid_compact_clustering).
    let (ki, ke) = (
        imp.clustering.cluster_count() as f64,
        exp.clustering.cluster_count() as f64,
    );
    assert!(
        (ki - ke).abs() <= 0.1 * ki.max(ke),
        "implicit {ki} vs explicit {ke} clusters"
    );
    // ... and the explicit variant pays extra synchronization messages on
    // top of expansion (ack/phase/start kinds). The *total* can still land
    // near the implicit total on a single instance because race outcomes
    // change the number of expand rebroadcasts; Fig 12/13 measure the
    // aggregate relationship.
    let sync_cost = exp.costs.kind("ack1").cost
        + exp.costs.kind("ack2").cost
        + exp.costs.kind("phase1").cost
        + exp.costs.kind("phase2").cost
        + exp.costs.kind("start").cost;
    assert!(sync_cost > 0, "explicit mode must pay synchronization");
    assert!(
        imp.costs.kind("ack1").cost == 0,
        "implicit mode must not ack"
    );
}

#[test]
fn explicit_on_async_terrain_is_valid() {
    let data = TerrainDataset::generate(250, 6, 0.55, 2);
    let features = data.features();
    let delta = 250.0;
    let net = SimNetwork::new(data.topology().clone());
    let outcome = run_explicit(
        &net,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(delta),
        DelayModel::Async { min: 1, max: 5 },
        13,
    );
    validate_delta_clustering(
        &outcome.clustering,
        net.topology(),
        &features,
        &Absolute,
        delta,
    )
    .unwrap();
    let k = outcome.clustering.cluster_count();
    assert!(k < 250, "terrain at δ=250 should aggregate ({k} clusters)");
}

#[test]
fn async_seeds_do_not_break_validity() {
    let data = TerrainDataset::generate(150, 6, 0.55, 8);
    let features = data.features();
    let net = SimNetwork::new(data.topology().clone());
    for seed in 0..5 {
        let outcome = run_explicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(300.0),
            DelayModel::Async { min: 1, max: 7 },
            seed,
        );
        validate_delta_clustering(
            &outcome.clustering,
            net.topology(),
            &features,
            &Absolute,
            300.0,
        )
        .unwrap();
    }
}

/// Theorem 2/3 empirics: messages grow linearly (O(N)) and time grows like
/// √N·log N. We check growth *ratios* on doubling grids: messages should
/// grow ≈ 4× per grid doubling (N quadruples), far below N²; time should
/// grow ≈ 2×–3×, far below 4×.
#[test]
fn message_and_time_complexity_growth() {
    let mut prev: Option<(u64, u64, usize)> = None;
    for side in [8usize, 16, 32] {
        let topo = Topology::grid(side, side);
        let n = topo.n();
        // Smooth feature field => few clusters at moderate delta.
        let features: Vec<Feature> = (0..n)
            .map(|v| {
                let r = (v / side) as f64;
                let c = (v % side) as f64;
                Feature::scalar(((r + c) / (2.0 * side as f64) * 10.0).floor())
            })
            .collect();
        let net = SimNetwork::new(topo);
        let outcome = run_implicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(3.0),
        );
        let cost = outcome.costs.total_cost();
        let time = outcome.elapsed;
        if let Some((prev_cost, prev_time, prev_n)) = prev {
            let n_ratio = n as f64 / prev_n as f64; // 4.0
            let cost_ratio = cost as f64 / prev_cost as f64;
            let time_ratio = time as f64 / prev_time as f64;
            assert!(
                cost_ratio < 1.8 * n_ratio,
                "messages grow super-linearly: {cost_ratio} per {n_ratio}x nodes"
            );
            // √N log N growth per 4x nodes is 2 · (log 4N / log N) ≈ 2.3–2.7.
            assert!(
                time_ratio < 3.5,
                "time grows faster than √N log N: {time_ratio} per {n_ratio}x"
            );
        }
        prev = Some((cost, time, n));
    }
}

#[test]
fn unordered_quality_is_no_better_than_ordered() {
    // §5: unordered expansion has poor clustering quality due to contention.
    let data = tao_small();
    let features = data.features();
    let metric = Arc::new(data.metric().clone());
    let delta = quantile_delta(&features, metric.as_ref(), 0.5);
    let config = ElinkConfig::for_delta(delta);
    let net = SimNetwork::new(data.topology().clone());
    let ordered = run_implicit(&net, &features, Arc::clone(&metric) as _, config);
    let unordered = run_unordered(&net, &features, metric as _, config, DelayModel::Sync, 0);
    assert!(
        unordered.clustering.cluster_count() >= ordered.clustering.cluster_count(),
        "unordered {} < ordered {}",
        unordered.clustering.cluster_count(),
        ordered.clustering.cluster_count()
    );
}

#[test]
fn deterministic_runs() {
    let data = tao_small();
    let features = data.features();
    let metric = Arc::new(data.metric().clone());
    let delta = quantile_delta(&features, metric.as_ref(), 0.4);
    let config = ElinkConfig::for_delta(delta);
    let net = SimNetwork::new(data.topology().clone());
    let a = run_explicit(
        &net,
        &features,
        Arc::clone(&metric) as _,
        config,
        DelayModel::Async { min: 1, max: 3 },
        99,
    );
    let b = run_explicit(
        &net,
        &features,
        metric as _,
        config,
        DelayModel::Async { min: 1, max: 3 },
        99,
    );
    assert_eq!(a.clustering.assignment, b.clustering.assignment);
    assert_eq!(a.costs.total_cost(), b.costs.total_cost());
    assert_eq!(a.elapsed, b.elapsed);
}
