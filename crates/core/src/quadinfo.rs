//! Per-node quadtree signalling information, precomputed from the
//! [`elink_topology::QuadTree`].
//!
//! The protocols need, for every node, the cells it leads, each cell's
//! level, the *leader of the parent cell* (its quad parent for `phase 1`
//! messages), the leaders of child cells (`start` / `phase 2` targets) and
//! — for correct `phase 1` fan-in over the pruned quadtree — how many child
//! branches actually contain cells of a given level.

use elink_topology::{CellId, NodeId, QuadTree, Topology};

/// Signalling info for one quadtree cell, from its leader's perspective.
#[derive(Debug, Clone)]
pub struct LedCell {
    /// The cell id (used to key synchronization messages).
    pub cell: CellId,
    /// The cell's quadtree level.
    pub level: usize,
    /// Parent cell id (`None` for the root cell).
    pub parent_cell: Option<CellId>,
    /// Leader of the parent cell (`None` for the root cell).
    pub parent_leader: Option<NodeId>,
    /// `(cell, leader)` of each non-empty child cell.
    pub children: Vec<(CellId, NodeId)>,
    /// Deepest level present in this cell's subtree (the cell's own level
    /// for leaves).
    pub subtree_max_level: usize,
}

impl LedCell {
    /// Number of children whose subtree contains cells at `level` — the
    /// `phase 1` fan-in count for that level.
    pub fn phase1_fanin(&self, level: usize, quad: &QuadInfo) -> usize {
        self.children
            .iter()
            .filter(|(c, _)| quad.subtree_max_level[*c] >= level)
            .count()
    }
}

/// Precomputed quadtree signalling structure.
#[derive(Debug, Clone)]
pub struct QuadInfo {
    /// Cells each node leads (possibly several nested cells).
    pub led_by_node: Vec<Vec<LedCell>>,
    /// Shallowest level each node leads (its implicit-schedule level).
    pub sentinel_level: Vec<usize>,
    /// Deepest level per cell subtree, indexed by cell id.
    pub subtree_max_level: Vec<usize>,
    /// The quadtree depth α.
    pub depth: usize,
    /// Leader of the root cell (the `S_0` sentinel).
    pub root_leader: NodeId,
    /// Root cell id.
    pub root_cell: CellId,
}

impl QuadInfo {
    /// Builds signalling info from a topology's quadtree.
    pub fn build(topology: &Topology) -> QuadInfo {
        let qt = QuadTree::build(topology);
        QuadInfo::from_quadtree(&qt, topology)
    }

    /// Builds signalling info from an existing quadtree.
    pub fn from_quadtree(qt: &QuadTree, topology: &Topology) -> QuadInfo {
        let n = topology.n();
        // Subtree max level per cell (post-order accumulation; cells are
        // created parent-before-children so a reverse scan suffices).
        let cell_count = qt.cell_count();
        let mut subtree_max_level = vec![0usize; cell_count];
        for id in (0..cell_count).rev() {
            let cell = qt.cell(id);
            let mut max = cell.level;
            for &ch in &cell.children {
                max = max.max(subtree_max_level[ch]);
            }
            subtree_max_level[id] = max;
        }

        let mut led_by_node: Vec<Vec<LedCell>> = vec![Vec::new(); n];
        let mut sentinel_level = vec![usize::MAX; n];
        for (id, cell) in qt.iter_cells() {
            let parent_leader = cell.parent.map(|p| qt.cell(p).leader);
            let children = cell
                .children
                .iter()
                .map(|&c| (c, qt.cell(c).leader))
                .collect();
            led_by_node[cell.leader].push(LedCell {
                cell: id,
                level: cell.level,
                parent_cell: cell.parent,
                parent_leader,
                children,
                subtree_max_level: subtree_max_level[id],
            });
            sentinel_level[cell.leader] = sentinel_level[cell.leader].min(cell.level);
        }
        // Duplicate positions can leave a node leading no cell; treat it as
        // a deepest-level sentinel so it still gets scheduled.
        let depth = qt.depth();
        for lvl in sentinel_level.iter_mut() {
            if *lvl == usize::MAX {
                *lvl = depth;
            }
        }
        QuadInfo {
            led_by_node,
            sentinel_level,
            subtree_max_level,
            depth,
            root_leader: qt.cell(qt.root()).leader,
            root_cell: qt.root(),
        }
    }

    /// The led-cell record for `(node, cell)`, if any.
    pub fn led_cell(&self, node: NodeId, cell: CellId) -> Option<&LedCell> {
        self.led_by_node[node].iter().find(|lc| lc.cell == cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elink_topology::Topology;

    #[test]
    fn root_leader_leads_level_zero() {
        let topo = Topology::grid(4, 4);
        let q = QuadInfo::build(&topo);
        assert_eq!(q.sentinel_level[q.root_leader], 0);
        let led = q.led_cell(q.root_leader, q.root_cell).unwrap();
        assert_eq!(led.level, 0);
        assert!(led.parent_leader.is_none());
    }

    #[test]
    fn every_node_has_a_sentinel_level() {
        let topo = Topology::random_synthetic(70, 3);
        let q = QuadInfo::build(&topo);
        for v in 0..topo.n() {
            assert!(q.sentinel_level[v] <= q.depth);
        }
    }

    #[test]
    fn subtree_max_level_reaches_leaves() {
        let topo = Topology::grid(4, 4);
        let q = QuadInfo::build(&topo);
        // Root subtree must contain the deepest level.
        assert_eq!(q.subtree_max_level[q.root_cell], q.depth);
    }

    #[test]
    fn phase1_fanin_counts_only_deep_branches() {
        let topo = Topology::grid(4, 4);
        let q = QuadInfo::build(&topo);
        let root_led = q.led_cell(q.root_leader, q.root_cell).unwrap();
        // At level 1, every child branch participates (all are non-empty).
        assert_eq!(root_led.phase1_fanin(1, &q), root_led.children.len());
        // Above the maximum depth nothing participates.
        assert_eq!(root_led.phase1_fanin(q.depth + 1, &q), 0);
    }

    #[test]
    fn parent_leader_links_are_consistent() {
        let topo = Topology::random_synthetic(50, 9);
        let q = QuadInfo::build(&topo);
        for node in 0..topo.n() {
            for led in &q.led_by_node[node] {
                for &(child_cell, child_leader) in &led.children {
                    let child_led = q.led_cell(child_leader, child_cell).unwrap();
                    assert_eq!(child_led.parent_leader, Some(node));
                    assert_eq!(child_led.level, led.level + 1);
                }
            }
        }
    }
}
