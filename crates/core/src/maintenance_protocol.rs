//! Event-driven (netsim) implementation of the §6 maintenance protocol.
//!
//! [`crate::maintenance::MaintenanceSim`] models the slack-update protocol
//! as a deterministic state machine with explicit message accounting; this
//! module runs the same protocol as actual messages on the simulator —
//! fetch requests climbing the cluster tree hop by hop, the root feature
//! descending the recorded path, neighbor root queries before a merge, and
//! root-drift broadcasts down the tree. The tests drive both
//! implementations with the same sequential update stream and assert
//! **identical cluster states and identical per-kind message bills**,
//! validating the accounting behind Figs 10–13.
//!
//! Updates are injected with [`elink_netsim::Simulator::inject`] (sensing
//! is free; only protocol traffic is charged). The equivalence holds for
//! *sequential* streams (one update fully processed before the next), which
//! is also how the experiment harness replays measurements.

use crate::clustering::Clustering;
use crate::node_table::{FlatMap, NodeHandle, NodeTable};
use elink_metric::{Feature, Metric};
use elink_netsim::{Ctx, Protocol};
use elink_topology::NodeId;
use std::sync::Arc;

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum MaintMsg {
    /// Injected sensing event: the node's model produced a new feature.
    FeatureUpdate(Feature),
    /// Fetch the current root feature; climbs the cluster tree.
    FetchRequest {
        /// The node that initiated the fetch.
        origin: NodeId,
    },
    /// The root feature descending back along the recorded path.
    FetchReply {
        /// The fetch initiator.
        origin: NodeId,
        /// The root's current feature.
        feature: Feature,
    },
    /// "What is your root and its feature?" (pre-merge neighbor probe).
    RootQuery,
    /// Reply to [`MaintMsg::RootQuery`].
    RootInfo {
        /// The neighbor's cluster root.
        root: NodeId,
        /// That root's feature as cached by the neighbor.
        root_feature: Feature,
    },
    /// Join under the receiving neighbor; carries the joiner's feature,
    /// which is then registered up the tree to the root.
    Join {
        /// The joining node.
        joiner: NodeId,
        /// Its current feature.
        feature: Feature,
    },
    /// Membership registration climbing to the root.
    Register {
        /// The joining node.
        joiner: NodeId,
        /// Its feature.
        feature: Feature,
    },
    /// Root-drift broadcast descending the cluster tree.
    NewRootFeature(Feature),
    /// "Remove me from your children" — sent to the old tree parent when a
    /// node detaches, keeping children lists accurate.
    LeaveParent,
    /// The parent detached: the receiving child becomes the root of its
    /// own subtree and announces itself downward via
    /// [`MaintMsg::DetachedRoot`].
    ParentDetached,
    /// A subtree ancestor re-rooted: descends the tree carrying the new
    /// root id and feature.
    DetachedRoot {
        /// The subtree's new root.
        root: NodeId,
        /// Its feature.
        feature: Feature,
    },
}

/// The §6 triple slack condition as a pure function: returns true when an
/// update from `anchor` to `new_feature` can be absorbed locally (no
/// synchronization traffic). `root_feature` is the node's cached root
/// feature, `delta` the cluster bound δ, `slack` the tolerance Δ:
///
/// * A₁: `d(anchor, new) ≤ Δ` — the feature barely moved;
/// * A₂: `d(new, root) − d(anchor, root) ≤ Δ` — it moved towards the root;
/// * A₃: `d(new, root) ≤ δ − Δ` — it is comfortably inside the cluster.
///
/// Shared by [`MaintNode`] and by the `elink-workload` result cache, whose
/// correctness argument rests on the contrapositive: while every update a
/// node absorbs satisfies one of these, its *anchor* is unchanged, so
/// answers computed over anchors stay exact.
pub fn slack_conditions_hold(
    metric: &dyn Metric,
    delta: f64,
    slack: f64,
    anchor: &Feature,
    root_feature: &Feature,
    new_feature: &Feature,
) -> bool {
    let d_anchor = metric.distance(anchor, new_feature);
    let d_new_root = metric.distance(new_feature, root_feature);
    let d_old_root = metric.distance(anchor, root_feature);
    d_anchor <= slack || d_new_root - d_old_root <= slack || d_new_root <= delta - slack
}

/// Per-node §6 protocol state.
pub struct MaintNode {
    metric: Arc<dyn Metric>,
    delta: f64,
    slack: f64,
    /// Live feature.
    pub feature: Feature,
    /// Anchor feature (last synchronized state, `F_i` of A₁).
    anchor: Feature,
    /// Monotone counter bumped every time `anchor` changes — i.e. exactly
    /// when an update exceeded the δ-slack bound and triggered
    /// synchronization. Result caches key their validity on this: an
    /// unchanged epoch guarantees every absorbed update stayed within
    /// slack, so anchor-based answers are still exact.
    anchor_epoch: u64,
    /// Current root.
    pub root: NodeId,
    /// Cached root feature (`F_{r_i}`).
    cached_root_feature: Feature,
    /// Cluster-tree parent (None at roots).
    pub tree_parent: Option<NodeId>,
    /// Cluster-tree children.
    tree_children: Vec<NodeId>,
    /// Registry translating fetch-origin ids to the dense handles keying
    /// `fetch_return`.
    nodes: NodeTable,
    /// In-flight fetch return paths: origin → the child to reply to.
    fetch_return: FlatMap<NodeHandle, NodeId>,
    /// Pending update awaiting the fetched root feature.
    pending_update: Option<Feature>,
    /// Pending merge state: collected neighbor root info.
    pending_merge: Option<PendingMerge>,
}

struct PendingMerge {
    new_feature: Feature,
    awaiting: usize,
    candidates: Vec<(NodeId, NodeId, Feature)>, // (neighbor, root, root feature)
}

impl MaintNode {
    fn dim(&self) -> u64 {
        self.feature.scalar_cost()
    }

    fn is_root(&self, ctx: &Ctx<'_, MaintMsg>) -> bool {
        self.root == ctx.id()
    }

    /// The §6 triple-condition check; returns true when the update is
    /// absorbed locally.
    fn slack_conditions_hold(&self, new_feature: &Feature) -> bool {
        slack_conditions_hold(
            self.metric.as_ref(),
            self.delta,
            self.slack,
            &self.anchor,
            &self.cached_root_feature,
            new_feature,
        )
    }

    /// Reassigns the anchor, bumping the invalidation epoch.
    fn set_anchor(&mut self, f: Feature) {
        self.anchor = f;
        self.anchor_epoch += 1;
    }

    /// The anchor feature (last synchronized state).
    pub fn anchor(&self) -> &Feature {
        &self.anchor
    }

    /// The anchor invalidation epoch: bumped on every anchor reassignment
    /// (see the field docs). Result caches compare epochs to detect that a
    /// slack-exceeding update has passed through this node.
    pub fn anchor_epoch(&self) -> u64 {
        self.anchor_epoch
    }

    fn on_feature_update(&mut self, new_feature: Feature, ctx: &mut Ctx<'_, MaintMsg>) {
        if self.is_root(ctx) {
            self.on_root_update(new_feature, ctx);
            return;
        }
        if self.slack_conditions_hold(&new_feature) {
            self.feature = new_feature;
            return;
        }
        // All three violated: fetch the fresh root feature up the tree.
        self.pending_update = Some(new_feature);
        let Some(parent) = self.tree_parent else {
            debug_assert!(false, "non-root {} lost its parent", ctx.id());
            return;
        };
        // Metrics: fetch round-trip envelope — [first request, last reply].
        ctx.phase_enter("maint.fetch");
        ctx.send(
            parent,
            MaintMsg::FetchRequest { origin: ctx.id() },
            "maint_fetch",
            1,
        );
    }

    // simlint: hot
    fn on_root_update(&mut self, new_feature: Feature, ctx: &mut Ctx<'_, MaintMsg>) {
        let drift = self.metric.distance(&self.anchor, &new_feature);
        self.feature = new_feature.clone(); // simlint: allow(no-hot-path-alloc): Feature dim <= 4 is inline storage; clone is a memcpy
        self.cached_root_feature = new_feature.clone(); // simlint: allow(no-hot-path-alloc): inline Feature memcpy
        if drift <= self.slack {
            return;
        }
        self.set_anchor(new_feature.clone()); // simlint: allow(no-hot-path-alloc): inline Feature memcpy
        if self.tree_children.is_empty() {
            // Singleton root: §6 merge attempt via neighbor probes.
            self.start_merge(new_feature, ctx);
            return;
        }
        // Metrics: root-drift broadcast envelope — [release, last receipt].
        ctx.phase_enter("maint.root_bcast");
        let dim = self.dim();
        for &c in &self.tree_children {
            ctx.send(
                c,
                MaintMsg::NewRootFeature(new_feature.clone()), // simlint: allow(no-hot-path-alloc): inline Feature memcpy into each child's payload
                "maint_root_bcast",
                dim,
            );
        }
    }

    fn start_merge(&mut self, new_feature: Feature, ctx: &mut Ctx<'_, MaintMsg>) {
        // Cold path: materialize the borrowed neighbor slice so we can keep
        // sending through `ctx` while iterating.
        let neighbors: Vec<usize> = ctx.neighbors().iter().map(|&w| w as usize).collect();
        if neighbors.is_empty() {
            return;
        }
        self.pending_merge = Some(PendingMerge {
            new_feature,
            awaiting: neighbors.len(),
            candidates: Vec::new(),
        });
        // Metrics: merge-round envelope — [first probe, merge decision].
        ctx.phase_enter("maint.merge");
        for w in neighbors {
            ctx.send(w, MaintMsg::RootQuery, "maint_merge", 1);
        }
    }

    fn finish_merge(&mut self, ctx: &mut Ctx<'_, MaintMsg>) {
        let Some(pending) = self.pending_merge.take() else {
            return;
        };
        ctx.phase_exit("maint.merge");
        let me = ctx.id();
        // Candidates arrive in neighbor order (sync network preserves the
        // send order); pick the first whose root is within δ, excluding our
        // own cluster.
        for (neighbor, root, root_feature) in pending.candidates {
            if root == self.root || root == me {
                continue;
            }
            let d = self.metric.distance(&pending.new_feature, &root_feature);
            if d <= self.delta {
                self.root = root;
                self.tree_parent = Some(neighbor);
                self.cached_root_feature = root_feature;
                self.set_anchor(pending.new_feature.clone());
                self.feature = pending.new_feature.clone();
                let dim = self.dim();
                ctx.send(
                    neighbor,
                    MaintMsg::Join {
                        joiner: me,
                        feature: pending.new_feature,
                    },
                    "maint_merge",
                    dim,
                );
                return;
            }
        }
        // No merge target: stay a singleton.
        self.feature = pending.new_feature.clone();
        self.set_anchor(pending.new_feature);
        self.tree_parent = None;
        self.root = me;
        self.cached_root_feature = self.feature.clone();
    }
}

impl Protocol for MaintNode {
    type Msg = MaintMsg;

    fn on_message(&mut self, from: NodeId, msg: MaintMsg, ctx: &mut Ctx<'_, MaintMsg>) {
        match msg {
            MaintMsg::FeatureUpdate(f) => self.on_feature_update(f, ctx),
            MaintMsg::FetchRequest { origin } => {
                if self.is_root(ctx) {
                    let dim = self.dim();
                    ctx.send(
                        from,
                        MaintMsg::FetchReply {
                            origin,
                            feature: self.feature.clone(),
                        },
                        "maint_fetch",
                        dim,
                    );
                } else {
                    self.fetch_return.insert(self.nodes.handle(origin), from);
                    let Some(parent) = self.tree_parent else {
                        debug_assert!(false, "non-root {} lost its parent", ctx.id());
                        return;
                    };
                    ctx.send(parent, MaintMsg::FetchRequest { origin }, "maint_fetch", 1);
                }
            }
            MaintMsg::FetchReply { origin, feature } => {
                if origin == ctx.id() {
                    ctx.phase_exit("maint.fetch");
                    self.cached_root_feature = feature.clone();
                    let Some(new_feature) = self.pending_update.take() else {
                        // Duplicate or stale reply: the update already
                        // resolved; ignore it.
                        return;
                    };
                    let d = self.metric.distance(&new_feature, &feature);
                    self.feature = new_feature.clone();
                    if d <= self.delta {
                        self.set_anchor(new_feature);
                        return;
                    }
                    // Detach: leave the old parent; each child roots its
                    // own subtree; then try to merge with a neighbor
                    // cluster as a singleton.
                    if let Some(p) = self.tree_parent.take() {
                        ctx.send(p, MaintMsg::LeaveParent, "maint_detach", 1);
                    }
                    self.root = ctx.id();
                    let dim = self.dim();
                    for c in std::mem::take(&mut self.tree_children) {
                        ctx.send(c, MaintMsg::ParentDetached, "maint_detach", dim);
                    }
                    self.start_merge(new_feature, ctx);
                } else {
                    let Some(child) = self.fetch_return.remove(&self.nodes.handle(origin)) else {
                        debug_assert!(false, "fetch reply at {} with no recorded path", ctx.id());
                        return;
                    };
                    let dim = self.dim();
                    ctx.send(
                        child,
                        MaintMsg::FetchReply { origin, feature },
                        "maint_fetch",
                        dim,
                    );
                }
            }
            MaintMsg::RootQuery => {
                let dim = self.dim();
                ctx.send(
                    from,
                    MaintMsg::RootInfo {
                        root: self.root,
                        root_feature: self.cached_root_feature.clone(),
                    },
                    "maint_merge",
                    dim,
                );
            }
            MaintMsg::RootInfo { root, root_feature } => {
                if let Some(p) = self.pending_merge.as_mut() {
                    p.candidates.push((from, root, root_feature));
                    p.awaiting -= 1;
                    if p.awaiting == 0 {
                        self.finish_merge(ctx);
                    }
                }
            }
            MaintMsg::LeaveParent => {
                self.tree_children.retain(|&c| c != from);
            }
            MaintMsg::Join { joiner, feature } => {
                if !self.tree_children.contains(&joiner) {
                    self.tree_children.push(joiner);
                }
                // Register the new member with the root.
                if self.is_root(ctx) {
                    return;
                }
                let Some(parent) = self.tree_parent else {
                    debug_assert!(false, "non-root {} lost its parent", ctx.id());
                    return;
                };
                let dim = self.dim();
                ctx.send(
                    parent,
                    MaintMsg::Register { joiner, feature },
                    "maint_merge",
                    dim,
                );
            }
            MaintMsg::Register { joiner, feature } => {
                if self.is_root(ctx) {
                    return;
                }
                let Some(parent) = self.tree_parent else {
                    debug_assert!(false, "non-root {} lost its parent", ctx.id());
                    return;
                };
                let dim = feature.scalar_cost();
                ctx.send(
                    parent,
                    MaintMsg::Register { joiner, feature },
                    "maint_merge",
                    dim,
                );
            }
            MaintMsg::NewRootFeature(f) => {
                ctx.phase_exit("maint.root_bcast");
                self.cached_root_feature = f.clone();
                let d = self.metric.distance(&self.feature, &f);
                let dim = self.dim();
                if d > self.delta {
                    // Violator: detach (children re-root their subtrees);
                    // the broadcast does not continue below this node.
                    if let Some(p) = self.tree_parent.take() {
                        ctx.send(p, MaintMsg::LeaveParent, "maint_detach", 1);
                    }
                    self.root = ctx.id();
                    self.set_anchor(self.feature.clone());
                    self.cached_root_feature = self.feature.clone();
                    for c in std::mem::take(&mut self.tree_children) {
                        ctx.send(c, MaintMsg::ParentDetached, "maint_detach", dim);
                    }
                } else {
                    for &c in &self.tree_children {
                        ctx.send(
                            c,
                            MaintMsg::NewRootFeature(f.clone()),
                            "maint_root_bcast",
                            dim,
                        );
                    }
                }
            }
            MaintMsg::ParentDetached => {
                // Metrics: detach cascades have no single initiator-side
                // bracket; the envelope stretches at every hop.
                ctx.phase_enter("maint.detach");
                ctx.phase_exit("maint.detach");
                // Become the root of this subtree and announce downward.
                self.tree_parent = None;
                self.root = ctx.id();
                self.set_anchor(self.feature.clone());
                self.cached_root_feature = self.feature.clone();
                let dim = self.dim();
                for &c in &self.tree_children {
                    ctx.send(
                        c,
                        MaintMsg::DetachedRoot {
                            root: ctx.id(),
                            feature: self.feature.clone(),
                        },
                        "maint_detach",
                        dim,
                    );
                }
            }
            MaintMsg::DetachedRoot { root, feature } => {
                ctx.phase_exit("maint.detach");
                self.root = root;
                self.cached_root_feature = feature.clone();
                let dim = self.dim();
                for &c in &self.tree_children {
                    ctx.send(
                        c,
                        MaintMsg::DetachedRoot {
                            root,
                            feature: feature.clone(),
                        },
                        "maint_detach",
                        dim,
                    );
                }
            }
        }
    }
}

/// Builds one [`MaintNode`] per node from an initial clustering.
pub fn maintenance_nodes(
    clustering: &Clustering,
    metric: Arc<dyn Metric>,
    features: &[Feature],
    delta: f64,
    slack: f64,
) -> Vec<MaintNode> {
    assert!(slack >= 0.0 && 2.0 * slack < delta, "need 0 ≤ 2Δ < δ");
    let children = clustering.tree_children();
    (0..clustering.n())
        .map(|v| {
            let root = clustering.root_of(v);
            MaintNode {
                metric: Arc::clone(&metric),
                delta,
                slack,
                feature: features[v].clone(),
                anchor: features[v].clone(),
                anchor_epoch: 0,
                root,
                cached_root_feature: features[root].clone(),
                tree_parent: clustering.tree_parent[v],
                tree_children: children[v].clone(),
                nodes: NodeTable::new(clustering.n()),
                fetch_return: FlatMap::new(),
                pending_update: None,
                pending_merge: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintenance::MaintenanceSim;
    use elink_metric::Absolute;
    use elink_netsim::{DelayModel, SimNetwork, Simulator};
    use elink_topology::Topology;

    /// Drives both implementations with the same sequential stream and
    /// compares per-kind message bills and final root assignments.
    fn run_both(
        topology: Topology,
        features: Vec<Feature>,
        delta: f64,
        slack: f64,
        stream: &[(NodeId, f64)],
    ) {
        let states: Vec<(NodeId, Feature)> = (0..topology.n())
            .map(|_| (0, features[0].clone()))
            .collect();
        let clustering = Clustering::from_node_states(&states, &topology, &Absolute);

        let metric: Arc<dyn Metric> = Arc::new(Absolute);
        let mut sim_model = MaintenanceSim::new(
            &clustering,
            Arc::new(topology.clone()),
            Arc::clone(&metric),
            features.clone(),
            delta,
            slack,
        );
        let nodes = maintenance_nodes(&clustering, Arc::clone(&metric), &features, delta, slack);
        let network = SimNetwork::new(topology);
        let mut sim_proto = Simulator::new(network, DelayModel::Sync, 0, nodes);
        sim_proto.run_to_completion(); // drain (empty) start events

        for &(node, value) in stream {
            sim_model.update(node, Feature::scalar(value));
            let now = sim_proto.now();
            sim_proto.inject(now, node, MaintMsg::FeatureUpdate(Feature::scalar(value)));
            sim_proto.run_to_completion();
        }

        for kind in [
            "maint_fetch",
            "maint_merge",
            "maint_root_bcast",
            "maint_detach",
        ] {
            assert_eq!(
                sim_proto.costs().kind(kind),
                sim_model.costs().kind(kind),
                "message bill diverges for {kind}"
            );
        }
        for v in 0..sim_proto.nodes().len() {
            assert_eq!(
                sim_proto.nodes()[v].root,
                sim_model.root_of(v),
                "root of node {v} diverges"
            );
        }
    }

    #[test]
    fn protocol_matches_state_machine_on_quiet_stream() {
        // Small drifts only: everything absorbed by A1/A3, zero messages.
        let topology = Topology::grid(1, 4);
        let features: Vec<Feature> = (0..4).map(|_| Feature::scalar(10.0)).collect();
        let stream: Vec<(NodeId, f64)> = (0..20)
            .map(|i| (1 + i % 3, 10.0 + 0.1 * (i as f64 % 3.0)))
            .collect();
        run_both(topology, features, 6.0, 1.0, &stream);
    }

    #[test]
    fn protocol_matches_state_machine_on_fetches() {
        // Values near the δ boundary trigger fetches that end in staying.
        let topology = Topology::grid(1, 4);
        let features: Vec<Feature> = (0..4).map(|_| Feature::scalar(10.0)).collect();
        let stream = vec![(3usize, 15.8), (3, 10.0), (2, 15.8), (2, 10.0)];
        run_both(topology, features, 6.0, 0.5, &stream);
    }

    #[test]
    fn protocol_matches_state_machine_on_detach_and_merge() {
        let topology = Topology::grid(1, 4);
        let features: Vec<Feature> = (0..4).map(|_| Feature::scalar(10.0)).collect();
        let stream = vec![
            (3usize, 50.0), // detach into singleton
            (3, 12.0),      // merge back via neighbor 2
            (1, 100.0),     // mid-tree detach
        ];
        run_both(topology, features, 6.0, 0.5, &stream);
    }

    #[test]
    fn protocol_matches_state_machine_on_mid_tree_broadcast_violator() {
        // Node 1 (mid-tree) drifts to the tolerance edge, then the root
        // jumps: node 1 violates δ against the new root feature, detaches,
        // and node 2's subtree re-roots — the broadcast stops below 1.
        let topology = Topology::grid(1, 5);
        let features: Vec<Feature> = (0..5).map(|_| Feature::scalar(10.0)).collect();
        let stream = vec![
            (1usize, 14.5), // absorbed by A3 (d to root = 4.5 ≤ δ − Δ)
            (0, 5.0),       // root drift of 5: node 1 at 14.5 violates δ=6
            (2, 10.2),      // quiet update in the re-rooted subtree
        ];
        run_both(topology, features, 6.0, 0.5, &stream);
    }

    /// The anchor epoch stays flat across absorbed updates and bumps
    /// exactly when a slack-exceeding update forces synchronization — the
    /// invalidation signal the workload result cache keys on.
    #[test]
    fn anchor_epoch_bumps_only_on_slack_exceeding_updates() {
        let topology = Topology::grid(1, 4);
        let features: Vec<Feature> = (0..4).map(|_| Feature::scalar(10.0)).collect();
        let states: Vec<(NodeId, Feature)> = (0..4).map(|_| (0, features[0].clone())).collect();
        let clustering = Clustering::from_node_states(&states, &topology, &Absolute);
        let metric: Arc<dyn Metric> = Arc::new(Absolute);
        let nodes = maintenance_nodes(&clustering, metric, &features, 6.0, 0.5);
        let network = SimNetwork::new(topology);
        let mut sim = Simulator::new(network, DelayModel::Sync, 0, nodes);
        sim.run_to_completion();
        assert!(sim.nodes().iter().all(|n| n.anchor_epoch() == 0));

        // Absorbed by A1 (drift 0.3 ≤ Δ): no epoch movement anywhere.
        let now = sim.now();
        sim.inject(now, 3, MaintMsg::FeatureUpdate(Feature::scalar(10.3)));
        sim.run_to_completion();
        assert!(sim.nodes().iter().all(|n| n.anchor_epoch() == 0));
        assert_eq!(sim.nodes()[3].anchor(), &Feature::scalar(10.0));

        // Slack-exceeding but within δ of the fetched root feature: node 3
        // synchronizes (fetch up, anchor reassigned) — epoch bumps at 3
        // only.
        let now = sim.now();
        sim.inject(now, 3, MaintMsg::FeatureUpdate(Feature::scalar(15.8)));
        sim.run_to_completion();
        assert_eq!(sim.nodes()[3].anchor_epoch(), 1);
        assert_eq!(sim.nodes()[3].anchor(), &Feature::scalar(15.8));
        assert!(sim.nodes()[..3].iter().all(|n| n.anchor_epoch() == 0));
    }

    #[test]
    fn protocol_matches_state_machine_on_root_broadcasts() {
        let topology = Topology::grid(1, 4);
        let features: Vec<Feature> = (0..4).map(|_| Feature::scalar(10.0)).collect();
        let stream = vec![
            (3usize, 14.0), // absorbed by A3
            (0, 4.0),       // root drift: broadcast, node 3 detaches
            (0, 4.1),       // absorbed
        ];
        run_both(topology, features, 6.0, 0.5, &stream);
    }
}
