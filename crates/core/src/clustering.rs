//! Clustering results and δ-clustering validation (Definition 1).

use crate::node_table::NodeTable;
use elink_metric::{Feature, Metric};
use elink_topology::{NodeId, Topology};
use std::collections::VecDeque;

/// Information about one cluster.
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    /// The cluster root (leader). Always a member of the cluster.
    pub root: NodeId,
    /// The root feature `F_r` that expansion compared against; every member
    /// was admitted with `d(F_r, F_i) ≤ δ/2`.
    pub root_feature: Feature,
    /// Member node ids (includes the root).
    pub members: Vec<NodeId>,
}

/// A complete clustering of a sensor network, with per-cluster trees.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id per node.
    pub assignment: Vec<usize>,
    /// Per-cluster information, indexed by cluster id.
    pub clusters: Vec<ClusterInfo>,
    /// Parent of each node in its cluster tree; `None` for cluster roots.
    /// Every parent edge is a communication-graph edge.
    pub tree_parent: Vec<Option<NodeId>>,
}

impl Clustering {
    /// Builds a clustering from raw per-node protocol state `(root id, root
    /// feature)`, repairing two artifacts the paper's protocol can leave
    /// behind after cluster switching:
    ///
    /// * a recorded root that itself switched away — the member of the
    ///   group nearest the root feature becomes the new root;
    /// * members of the same root that are no longer connected — each
    ///   connected component becomes its own cluster (Definition 1 requires
    ///   connectivity; δ-compactness is preserved because every member is
    ///   within δ/2 of the original root feature).
    ///
    /// Cluster trees are rebuilt as BFS trees from the root within each
    /// cluster, which is how queries later navigate them.
    pub fn from_node_states(
        states: &[(NodeId, Feature)],
        topology: &Topology,
        metric: &dyn Metric,
    ) -> Clustering {
        let n = topology.n();
        assert_eq!(states.len(), n);
        let table = NodeTable::new(n);
        // Group nodes by recorded root id: one sort of dense handles by
        // `(root, id)` replaces the old BTreeMap-of-Vecs grouping and
        // yields the identical (ascending root, ascending member) visit
        // order with a single allocation.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| (states[v as usize].0, v));

        let mut assignment = vec![usize::MAX; n];
        let mut clusters = Vec::new();
        let mut tree_parent = vec![None; n];
        let graph = topology.graph();
        // Struct-of-arrays scratch reused across components: cleared by
        // touched index, so the whole build does O(Σ|C|) scratch work
        // instead of O(n · #clusters) fresh allocations.
        let mut in_cluster = table.column(false);
        let mut seen = table.column(false);
        let mut queue = VecDeque::new();

        let mut lo = 0;
        while lo < n {
            let root_id = states[order[lo] as usize].0;
            let mut hi = lo;
            while hi < n && states[order[hi] as usize].0 == root_id {
                hi += 1;
            }
            let members: Vec<NodeId> = order[lo..hi].iter().map(|&v| v as usize).collect();
            lo = hi;
            let root_feature = states[members[0]].1.clone();
            for component in graph.induced_components(&members) {
                // Root: the recorded root if present, else the member
                // nearest the recorded root feature.
                let root = if component.contains(&root_id) {
                    root_id
                } else {
                    // Components from `induced_components` are non-empty, so
                    // an explicit scan (ties broken by node id via
                    // `total_cmp`) avoids any panicking path here.
                    let mut best = component[0];
                    let mut best_d = metric.distance(&states[best].1, &root_feature);
                    for &v in &component[1..] {
                        let d = metric.distance(&states[v].1, &root_feature);
                        if d.total_cmp(&best_d).then(v.cmp(&best)).is_lt() {
                            best = v;
                            best_d = d;
                        }
                    }
                    best
                };
                let cluster_id = clusters.len();
                for &m in &component {
                    assignment[m] = cluster_id;
                }
                // BFS tree from the root, restricted to the component.
                for &m in &component {
                    in_cluster[m] = true;
                }
                seen[root] = true;
                queue.push_back(root);
                while let Some(v) = queue.pop_front() {
                    for &w in graph.neighbors(v) {
                        let w = w as usize;
                        if in_cluster[w] && !seen[w] {
                            seen[w] = true;
                            tree_parent[w] = Some(v);
                            queue.push_back(w);
                        }
                    }
                }
                // Reset scratch for the next component (touched cells only).
                for &m in &component {
                    in_cluster[m] = false;
                    seen[m] = false;
                }
                let mut members = component;
                members.sort_unstable();
                clusters.push(ClusterInfo {
                    root,
                    root_feature: states[root].1.clone(),
                    members,
                });
            }
        }
        debug_assert!(assignment.iter().all(|&c| c != usize::MAX));
        Clustering {
            assignment,
            clusters,
            tree_parent,
        }
    }

    /// Number of clusters — the paper's clustering-quality metric (§8.2).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    /// The cluster id of a node.
    pub fn cluster_of(&self, node: NodeId) -> usize {
        self.assignment[node]
    }

    /// The root node of the cluster containing `node`.
    pub fn root_of(&self, node: NodeId) -> NodeId {
        self.clusters[self.assignment[node]].root
    }

    /// Hop depth of `node` in its cluster tree (root = 0).
    pub fn tree_depth(&self, node: NodeId) -> usize {
        let mut depth = 0;
        let mut cur = node;
        while let Some(p) = self.tree_parent[cur] {
            depth += 1;
            cur = p;
            assert!(depth <= self.n(), "cluster tree contains a cycle");
        }
        depth
    }

    /// Cluster representatives — the roots. §1: "instead of gathering data
    /// from every node in the cluster, only a set of cluster
    /// representatives need to be sampled", cutting acquisition and
    /// transmission costs by the factor [`Clustering::acquisition_saving`].
    pub fn representatives(&self) -> Vec<NodeId> {
        self.clusters.iter().map(|c| c.root).collect()
    }

    /// Acquisition-saving factor `N / #clusters` when only representatives
    /// are sampled.
    pub fn acquisition_saving(&self) -> f64 {
        self.n() as f64 / self.cluster_count().max(1) as f64
    }

    /// Per-node representation error when every node's feature is
    /// approximated by its cluster root's feature. For an ideal ELink
    /// clustering every error is ≤ δ/2 (the admission rule), and ≤ δ for
    /// any valid δ-clustering.
    pub fn representation_errors(&self, features: &[Feature], metric: &dyn Metric) -> Vec<f64> {
        (0..self.n())
            .map(|v| {
                let root = self.root_of(v);
                metric.distance(&features[v], &features[root])
            })
            .collect()
    }

    /// The children lists of every node's cluster tree (inverse of
    /// `tree_parent`), used to walk trees top-down (index build, queries).
    pub fn tree_children(&self) -> Vec<Vec<NodeId>> {
        let mut children = vec![Vec::new(); self.n()];
        for (v, parent) in self.tree_parent.iter().enumerate() {
            if let Some(p) = parent {
                children[*p].push(v);
            }
        }
        children
    }
}

/// Why a candidate clustering is not a valid δ-clustering.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A node is missing from every cluster or appears in two.
    NotAPartition {
        /// The uncovered or doubly-covered node.
        node: NodeId,
    },
    /// A cluster's induced communication subgraph is disconnected
    /// (Definition 1, condition 1).
    Disconnected {
        /// Index of the disconnected cluster.
        cluster: usize,
    },
    /// Two members of a cluster are farther than δ apart (Definition 1,
    /// condition 2).
    NotDeltaCompact {
        /// Index of the offending cluster.
        cluster: usize,
        /// First witness member.
        i: NodeId,
        /// Second witness member.
        j: NodeId,
        /// Their feature distance (`> δ`).
        distance: f64,
    },
    /// A cluster-tree parent edge is not a communication-graph edge, or a
    /// tree does not span its cluster.
    BrokenTree {
        /// The node whose tree edge is invalid or unreachable.
        node: NodeId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NotAPartition { node } => write!(f, "node {node} not partitioned"),
            ValidationError::Disconnected { cluster } => {
                write!(f, "cluster {cluster} is disconnected")
            }
            ValidationError::NotDeltaCompact {
                cluster,
                i,
                j,
                distance,
            } => write!(
                f,
                "cluster {cluster}: d({i},{j}) = {distance} exceeds delta"
            ),
            ValidationError::BrokenTree { node } => write!(f, "broken cluster tree at {node}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates Definition 1 for a [`Clustering`]: disjoint cover,
/// per-cluster connectivity, pairwise δ-compactness, and cluster-tree
/// integrity. `O(Σ |C|²)` distance checks.
pub fn validate_delta_clustering(
    clustering: &Clustering,
    topology: &Topology,
    features: &[Feature],
    metric: &dyn Metric,
    delta: f64,
) -> Result<(), ValidationError> {
    let n = topology.n();
    // Partition check.
    let mut seen = vec![false; n];
    for (cid, cluster) in clustering.clusters.iter().enumerate() {
        for &m in &cluster.members {
            if seen[m] {
                return Err(ValidationError::NotAPartition { node: m });
            }
            seen[m] = true;
            if clustering.assignment[m] != cid {
                return Err(ValidationError::NotAPartition { node: m });
            }
        }
    }
    if let Some(node) = seen.iter().position(|&s| !s) {
        return Err(ValidationError::NotAPartition { node });
    }

    let graph = topology.graph();
    for (cid, cluster) in clustering.clusters.iter().enumerate() {
        // Connectivity.
        if graph.induced_components(&cluster.members).len() != 1 {
            return Err(ValidationError::Disconnected { cluster: cid });
        }
        // δ-compactness.
        for (a, &i) in cluster.members.iter().enumerate() {
            for &j in &cluster.members[a + 1..] {
                let d = metric.distance(&features[i], &features[j]);
                if d > delta + 1e-9 {
                    return Err(ValidationError::NotDeltaCompact {
                        cluster: cid,
                        i,
                        j,
                        distance: d,
                    });
                }
            }
        }
        // Tree integrity: every non-root member must reach the root via
        // parent edges that are graph edges and stay inside the cluster.
        for &m in &cluster.members {
            if m == cluster.root {
                if clustering.tree_parent[m].is_some() {
                    return Err(ValidationError::BrokenTree { node: m });
                }
                continue;
            }
            let mut cur = m;
            let mut steps = 0;
            loop {
                let Some(p) = clustering.tree_parent[cur] else {
                    if cur != cluster.root {
                        return Err(ValidationError::BrokenTree { node: m });
                    }
                    break;
                };
                if !graph.has_edge(cur, p) || clustering.assignment[p] != cid {
                    return Err(ValidationError::BrokenTree { node: m });
                }
                cur = p;
                steps += 1;
                if steps > n {
                    return Err(ValidationError::BrokenTree { node: m });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elink_metric::Absolute;

    /// 1×4 path with features 0, 1, 10, 11 — natural δ=2 clustering is
    /// {0,1} and {2,3}.
    fn setup() -> (Topology, Vec<Feature>) {
        let topo = Topology::grid(1, 4);
        let features = vec![
            Feature::scalar(0.0),
            Feature::scalar(1.0),
            Feature::scalar(10.0),
            Feature::scalar(11.0),
        ];
        (topo, features)
    }

    fn states_for(roots: &[usize], features: &[Feature]) -> Vec<(NodeId, Feature)> {
        roots.iter().map(|&r| (r, features[r].clone())).collect()
    }

    #[test]
    fn builds_from_states_and_validates() {
        let (topo, features) = setup();
        let states = states_for(&[0, 0, 2, 2], &features);
        let c = Clustering::from_node_states(&states, &topo, &Absolute);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_ne!(c.cluster_of(1), c.cluster_of(2));
        assert_eq!(c.root_of(1), 0);
        validate_delta_clustering(&c, &topo, &features, &Absolute, 2.0).unwrap();
    }

    #[test]
    fn splits_disconnected_groups() {
        let (topo, features) = setup();
        // Nodes 0 and 3 claim root 0 but are not connected through members.
        let states = vec![
            (0, features[0].clone()),
            (1, features[1].clone()),
            (2, features[2].clone()),
            (0, features[0].clone()),
        ];
        let c = Clustering::from_node_states(&states, &topo, &Absolute);
        // Groups: root0 -> {0,3} (split into {0} and {3}), root1 -> {1},
        // root2 -> {2} => 4 clusters.
        assert_eq!(c.cluster_count(), 4);
        validate_delta_clustering(&c, &topo, &features, &Absolute, 2.0).unwrap();
    }

    #[test]
    fn replaces_missing_root() {
        let (topo, features) = setup();
        // Root 2 recorded by nodes 2,3, but node 2's own state points to
        // root 0 (it "switched"): group for root 2 contains only node 3.
        let states = vec![
            (0, features[0].clone()),
            (0, features[0].clone()),
            (0, features[0].clone()), // switched away — breaks δ here, but tree logic is what we test
            (2, features[2].clone()),
        ];
        let c = Clustering::from_node_states(&states, &topo, &Absolute);
        // Node 3 forms its own cluster rooted at itself.
        let c3 = c.cluster_of(3);
        assert_eq!(c.clusters[c3].root, 3);
    }

    #[test]
    fn tree_depths_and_children() {
        let (topo, features) = setup();
        let states = states_for(&[0, 0, 0, 0], &features);
        let c = Clustering::from_node_states(&states, &topo, &Absolute);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.tree_depth(0), 0);
        assert_eq!(c.tree_depth(3), 3);
        let children = c.tree_children();
        assert_eq!(children[0], vec![1]);
        assert_eq!(children[1], vec![2]);
    }

    #[test]
    fn representatives_and_errors() {
        let (topo, features) = setup();
        let c =
            Clustering::from_node_states(&states_for(&[0, 0, 2, 2], &features), &topo, &Absolute);
        assert_eq!(c.representatives(), vec![0, 2]);
        assert_eq!(c.acquisition_saving(), 2.0);
        let errs = c.representation_errors(&features, &Absolute);
        assert_eq!(errs, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn validation_catches_delta_violation() {
        let (topo, features) = setup();
        let states = states_for(&[0, 0, 0, 0], &features);
        let c = Clustering::from_node_states(&states, &topo, &Absolute);
        let err = validate_delta_clustering(&c, &topo, &features, &Absolute, 2.0).unwrap_err();
        assert!(matches!(err, ValidationError::NotDeltaCompact { .. }));
    }

    #[test]
    fn validation_catches_disconnection() {
        let (topo, features) = setup();
        let mut c =
            Clustering::from_node_states(&states_for(&[0, 0, 2, 2], &features), &topo, &Absolute);
        // Corrupt: claim node 3 belongs to cluster 0.
        let c0 = c.cluster_of(0);
        let c1 = c.cluster_of(3);
        c.assignment[3] = c0;
        c.clusters[c0].members.push(3);
        c.clusters[c1].members.retain(|&m| m != 3);
        // Cluster c1 loses a member; partition check for cluster sizes may
        // trip first, so accept either error.
        let err = validate_delta_clustering(&c, &topo, &features, &Absolute, 20.0).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::Disconnected { .. } | ValidationError::BrokenTree { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn validation_catches_missing_node() {
        let (topo, features) = setup();
        let mut c =
            Clustering::from_node_states(&states_for(&[0, 0, 2, 2], &features), &topo, &Absolute);
        let cid = c.cluster_of(1);
        c.clusters[cid].members.retain(|&m| m != 1);
        let err = validate_delta_clustering(&c, &topo, &features, &Absolute, 2.0).unwrap_err();
        assert!(matches!(err, ValidationError::NotAPartition { node: 1 }));
    }
}
