//! Dense node handles and flat, cache-friendly collections.
//!
//! The protocol crates originally kept per-node state in nested
//! `BTreeMap<NodeId, _>` / `BTreeSet<NodeId>` structures. Those are
//! pointer-rich: every entry is a separate heap node, lookups chase
//! cache-cold pointers, and clones on the broadcast hot path allocate per
//! message. At the fleet sizes the paper targets (§8: hundreds of nodes;
//! ROADMAP: 10⁴–10⁵) this dominates the simulator's wall-clock.
//!
//! This module provides the memory-lean replacements used across `core`,
//! `workload` and `baselines`:
//!
//! * [`NodeTable`] — the explicit registry mapping public
//!   [`NodeId`](elink_topology::NodeId)s to
//!   dense [`NodeHandle`]s (`u32`). Node ids in this codebase are already
//!   dense `0..n`, so the mapping is a checked cast; the registry makes the
//!   narrowing explicit, owns the `n ≤ u32::MAX` invariant, and gives
//!   struct-of-arrays columns ([`NodeTable::column`]) a single authority
//!   for their length.
//! * [`FlatMap`] / [`FlatSet`] — sorted-vector map/set with binary-search
//!   lookup. One contiguous allocation, no per-entry boxes, and iteration
//!   order identical to the `BTreeMap`/`BTreeSet` they replace (ascending
//!   by key) — which is what keeps `CostBook` and `JsonlTrace` output
//!   byte-identical across the refactor.
//!
//! # Handle lifetimes
//!
//! A [`NodeHandle`] is valid for exactly the lifetime of the [`NodeTable`]
//! that issued it (in practice: one simulation run over one topology).
//! Handles are plain indices — they carry no generation tag — so they must
//! never be stored across runs or across tables of different sizes; debug
//! builds assert bounds on every translation.

use elink_topology::NodeId;

/// Dense `u32` handle for a node, issued by a [`NodeTable`].
///
/// Handles order and compare exactly like the [`NodeId`]s they stand for
/// (the registry preserves order), so `FlatMap<NodeHandle, _>` iterates in
/// the same sequence as the `BTreeMap<NodeId, _>` it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeHandle(u32);

impl NodeHandle {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Registry translating public [`NodeId`]s to dense [`NodeHandle`]s.
///
/// Owns the fleet-size invariant (`n ≤ u32::MAX`) and is the single
/// authority for the length of struct-of-arrays columns.
#[derive(Debug, Clone)]
pub struct NodeTable {
    n: u32,
}

impl NodeTable {
    /// Builds a registry for a fleet of `n` nodes with ids `0..n`.
    ///
    /// # Panics
    /// Panics if `n` exceeds `u32::MAX`.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "fleet too large for u32 handles");
        NodeTable { n: n as u32 }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The dense handle for a node id.
    ///
    /// # Panics
    /// Debug-asserts that the id is registered (`id < n`).
    #[inline]
    pub fn handle(&self, id: NodeId) -> NodeHandle {
        debug_assert!(id < self.n as usize, "node id {id} out of table range");
        NodeHandle(id as u32)
    }

    /// The public node id behind a handle.
    #[inline]
    pub fn id(&self, h: NodeHandle) -> NodeId {
        debug_assert!(h.0 < self.n, "stale handle {h:?} for table of {}", self.n);
        h.0 as usize
    }

    /// Allocates a struct-of-arrays column: one `T` per registered node,
    /// indexable by [`NodeHandle::index`].
    pub fn column<T: Clone>(&self, fill: T) -> Vec<T> {
        vec![fill; self.len()]
    }

    /// Iterates all handles in ascending id order.
    pub fn handles(&self) -> impl Iterator<Item = NodeHandle> {
        (0..self.n).map(NodeHandle)
    }
}

/// A map stored as a single sorted vector of `(key, value)` pairs.
///
/// Lookup is binary search (`O(log n)` like `BTreeMap`, but on one
/// contiguous allocation); insert/remove shift the tail (`O(n)` worst
/// case, cheap at the per-node map sizes seen here — children lists,
/// pending phases — which are bounded by node degree or quadtree fanout).
/// Iteration is ascending by key, matching `BTreeMap`.
#[derive(Debug, Clone, Default)]
pub struct FlatMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord + Copy, V> FlatMap<K, V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FlatMap {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    #[inline]
    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.position(key).is_ok()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value for `key`, inserting `default()` first if absent
    /// (`BTreeMap::entry(k).or_insert_with(f)` equivalent).
    pub fn or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.position(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Mutable values in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Keeps only entries for which the predicate holds.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| pred(k, v));
    }
}

/// A set stored as a single sorted vector. See [`FlatMap`] for the
/// layout/complexity trade-off; iteration is ascending, matching
/// `BTreeSet`.
#[derive(Debug, Clone, Default)]
pub struct FlatSet<K> {
    items: Vec<K>,
}

impl<K: Ord + Copy> FlatSet<K> {
    /// An empty set (no allocation until the first insert).
    pub fn new() -> Self {
        FlatSet { items: Vec::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `key` is a member.
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.items.binary_search(key).is_ok()
    }

    /// Inserts `key`; returns `true` if it was newly added.
    pub fn insert(&mut self, key: K) -> bool {
        match self.items.binary_search(&key) {
            Ok(_) => false,
            Err(i) => {
                self.items.insert(i, key);
                true
            }
        }
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.items.binary_search(key) {
            Ok(i) => {
                self.items.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.items.iter()
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// Splits the symmetric difference of two sorted, deduplicated id slices
/// into `(adds, removes)`: ids present in `new` but not `old`, and ids
/// present in `old` but not `new`. One O(|old| + |new|) merge walk — this
/// is the result-delta primitive of the standing-query repair path, where
/// `old` is a subscriber's acknowledged view and `new` the freshly repaired
/// answer.
pub fn diff_sorted(old: &[NodeId], new: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    debug_assert!(old.windows(2).all(|w| w[0] < w[1]), "old must be sorted");
    debug_assert!(new.windows(2).all(|w| w[0] < w[1]), "new must be sorted");
    let mut adds = Vec::new();
    let mut removes = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                removes.push(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                adds.push(new[j]);
                j += 1;
            }
        }
    }
    removes.extend_from_slice(&old[i..]);
    adds.extend_from_slice(&new[j..]);
    (adds, removes)
}

/// Applies a `(adds, removes)` delta to a sorted view in place, preserving
/// sortedness. Adds and removes are set operations (idempotent), so a delta
/// applied to the exact base it was computed against reproduces the new
/// set.
pub fn apply_diff_sorted(view: &mut Vec<NodeId>, adds: &[NodeId], removes: &[NodeId]) {
    for &r in removes {
        if let Ok(i) = view.binary_search(&r) {
            view.remove(i);
        }
    }
    for &a in adds {
        if let Err(i) = view.binary_search(&a) {
            view.insert(i, a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn node_table_round_trips_ids() {
        let table = NodeTable::new(5);
        assert_eq!(table.len(), 5);
        for id in 0..5 {
            assert_eq!(table.id(table.handle(id)), id);
        }
        let ids: Vec<_> = table.handles().map(|h| table.id(h)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(table.column(0u8).len(), 5);
    }

    #[test]
    fn handles_order_like_ids() {
        let table = NodeTable::new(10);
        assert!(table.handle(3) < table.handle(7));
        assert_eq!(table.handle(4), table.handle(4));
    }

    #[test]
    fn flat_map_matches_btreemap_semantics() {
        let mut flat: FlatMap<u32, i64> = FlatMap::new();
        let mut tree: BTreeMap<u32, i64> = BTreeMap::new();
        // Deterministic scrambled workload of inserts/removes/updates.
        let mut x: u64 = 0x243F6A8885A308D3;
        for step in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) as u32 % 64;
            match step % 4 {
                0 | 1 => {
                    assert_eq!(flat.insert(key, step), tree.insert(key, step));
                }
                2 => {
                    assert_eq!(flat.remove(&key), tree.remove(&key));
                }
                _ => {
                    *flat.or_insert_with(key, || -1) += 1;
                    *tree.entry(key).or_insert(-1) += 1;
                }
            }
            assert_eq!(flat.get(&key), tree.get(&key));
            assert_eq!(flat.len(), tree.len());
        }
        // Iteration order must be identical (ascending by key).
        let a: Vec<_> = flat.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
        let ka: Vec<_> = flat.keys().copied().collect();
        let kb: Vec<_> = tree.keys().copied().collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn flat_map_mutation_helpers() {
        let mut m: FlatMap<u8, Vec<u8>> = FlatMap::new();
        m.or_insert_with(2, Vec::new).push(9);
        m.or_insert_with(2, Vec::new).push(8);
        assert_eq!(m.get(&2), Some(&vec![9, 8]));
        *m.get_mut(&2).unwrap() = vec![7];
        assert!(m.contains_key(&2));
        m.insert(1, vec![1]);
        m.insert(3, vec![3]);
        m.retain(|k, _| *k != 2);
        let keys: Vec<_> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3]);
        for (_, v) in m.iter_mut() {
            v.push(0);
        }
        assert_eq!(m.values().map(Vec::len).sum::<usize>(), 4);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn flat_set_matches_btreeset_semantics() {
        let mut flat: FlatSet<u32> = FlatSet::new();
        let mut tree: BTreeSet<u32> = BTreeSet::new();
        let mut x: u64 = 0x13198A2E03707344;
        for step in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) as u32 % 48;
            if step % 3 == 0 {
                assert_eq!(flat.remove(&key), tree.remove(&key));
            } else {
                assert_eq!(flat.insert(key), tree.insert(key));
            }
            assert_eq!(flat.contains(&key), tree.contains(&key));
            assert_eq!(flat.len(), tree.len());
        }
        let a: Vec<_> = flat.iter().copied().collect();
        let b: Vec<_> = tree.iter().copied().collect();
        assert_eq!(a, b);
        flat.clear();
        assert!(flat.is_empty());
    }
}
