//! The ELink node protocol (Figs 16–18).
//!
//! One [`ElinkNode`] instance runs at every sensor. Three signalling modes
//! share the same expansion rule (Fig 16):
//!
//! * [`SignalMode::Implicit`] (§4, Fig 17): each node arms a timer at
//!   `T = Σ_{j<l} t_j` for its (shallowest) sentinel level `l` and runs
//!   ELink when it expires. Correct on synchronous networks.
//! * [`SignalMode::Explicit`] (§5, Fig 18): `ack1` registers cluster-tree
//!   children, `ack2` waves report subtree completion, `phase 1` ascends the
//!   quadtree to the root, `phase 2` descends, and `start` triggers the next
//!   sentinel level. Correct on asynchronous networks.
//! * [`SignalMode::Unordered`] (§5, closing remark): every sentinel starts
//!   at once — the `O(√N)`-time ablation whose quality suffers from
//!   contention. The same-level switch restriction is lifted because levels
//!   are meaningless when everything runs concurrently.
//!
//! Cluster switching implements Fig 16's printed condition: a clustered
//! node switches only to a same-level sentinel with
//! `d(F_rj, F_i) < d(F_ri, F_i) + φ` (a φ-tolerance, which is what lets
//! freshly self-rooted sentinels dissolve into neighbor clusters — the
//! "fewer than five clusters" case of §3.2), at most `c` times, and never
//! back into a cluster it has left (see DESIGN.md for the rationale).

use crate::config::ElinkConfig;
use crate::node_table::{FlatMap, FlatSet, NodeHandle, NodeTable};
use crate::quadinfo::QuadInfo;
use elink_metric::{Feature, Metric};
use elink_netsim::{canon_f64, Canonicalize, Ctx, Protocol};
use elink_topology::{CellId, NodeId};
use std::sync::Arc;

/// Messages exchanged by ELink.
#[derive(Debug, Clone)]
pub enum ElinkMsg {
    /// Cluster expansion (Fig 16): carries the root feature, root id and the
    /// sentinel level that grew the cluster.
    Expand {
        /// Cluster root id.
        root: NodeId,
        /// Root feature `F_r` (payload: `dim` scalars).
        root_feature: Feature,
        /// Sentinel level `n` of the cluster root.
        level: usize,
    },
    /// Explicit mode: "I joined your cluster as your child" (Fig 18).
    Ack1 {
        /// Root of the cluster joined.
        root: NodeId,
    },
    /// Explicit mode: "the cluster subtree under me is fully expanded".
    Ack2 {
        /// Root of the cluster.
        root: NodeId,
    },
    /// Explicit mode: quadtree up-sweep announcing completion of level
    /// `level`. Addressed to the leader of `cell`.
    Phase1 {
        /// The receiving leader's cell.
        cell: CellId,
        /// The sentinel level that completed.
        level: usize,
    },
    /// Explicit mode: quadtree down-sweep after the root learned that level
    /// `level` completed.
    Phase2 {
        /// The receiving leader's cell.
        cell: CellId,
        /// The completed level.
        level: usize,
        /// Hop count accumulated since the root issued the wave — the
        /// bounded-delay start-alignment hint (see [`ElinkMsg::Start`]).
        elapsed: u64,
    },
    /// Explicit mode: "begin ELink for your cell" (sent to the next level's
    /// sentinels).
    ///
    /// Carries the hops accumulated since the quadtree root released the
    /// level: a sentinel delays its expansion by the residual of a fixed
    /// per-level budget so that all same-level sentinels begin (nearly)
    /// simultaneously. Without this Awerbuch-style synchronization hint
    /// (\[4\], which the paper's explicit technique builds on), early `start`
    /// arrivals give some sentinels a multi-hop head start and the output
    /// diverges from the implicit variant on irregular topologies.
    Start {
        /// The receiving leader's cell.
        cell: CellId,
        /// Accumulated hops since the wave was released.
        elapsed: u64,
    },
}

/// Signalling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalMode {
    /// Timer-scheduled levels (synchronous networks, §4).
    Implicit,
    /// Message-synchronized levels (asynchronous networks, §5).
    Explicit,
    /// All sentinels at once (§5 ablation).
    Unordered,
}

/// Timer ids: `SCHEDULE` starts ELink in implicit/unordered mode;
/// `START_BASE + cell` delays an aligned explicit start for one led cell;
/// `LEAF_BASE + root` is the per-cluster leaf-detection timeout. Cell ids
/// and node ids are both bounded by 2³² in practice, so the ranges are
/// disjoint.
const TIMER_SCHEDULE: u64 = 0;
const TIMER_START_BASE: u64 = 1 << 40;
const TIMER_LEAF_BASE: u64 = 1;

/// Phase names for the per-level cluster-growth spans recorded in the
/// metrics registry (keys must be `&'static str`; deep levels share one
/// bucket — quadtree depth is `O(log₄ N)`, so 8 named levels cover every
/// practical run).
const GROWTH_PHASES: [&str; 9] = [
    "growth.l0",
    "growth.l1",
    "growth.l2",
    "growth.l3",
    "growth.l4",
    "growth.l5",
    "growth.l6",
    "growth.l7",
    "growth.l8plus",
];

/// The growth-phase name for a sentinel level.
fn growth_phase(level: usize) -> &'static str {
    GROWTH_PHASES[level.min(GROWTH_PHASES.len() - 1)]
}

/// Packs a `(cell, level)` phase-1 key into one `u64`. Quadtree depth is
/// `O(log₄ N)` so levels fit 16 bits with room to spare; packed keys sort
/// exactly like the `(CellId, usize)` tuples they replace.
fn phase1_key(cell: CellId, level: usize) -> u64 {
    debug_assert!(level < (1 << 16), "quadtree level {level} out of range");
    debug_assert!((cell as u64) < (1 << 48), "cell id {cell} out of range");
    ((cell as u64) << 16) | level as u64
}

/// Per-cluster bookkeeping for the explicit completion waves.
#[derive(Debug, Clone)]
struct Subtree {
    /// Cluster-tree parent at join time (`None` when this node rooted the
    /// cluster itself).
    parent: Option<NodeId>,
    /// Outstanding `ack2`s from children recruited by this node.
    pending_children: usize,
    /// Whether the leaf-detection timeout has expired (no more `ack1`s can
    /// arrive).
    wait_done: bool,
    /// Whether completion has already been reported upward.
    acked: bool,
    /// For self-rooted clusters: the quadtree cell whose `start` triggered
    /// the expansion (drives the `phase 1` report on completion).
    sentinel_cell: Option<CellId>,
}

/// Named silent-drop sites (see [`ElinkNode::stray_drops`]).
///
/// Every guard in the protocol that discards an event instead of handling
/// it records one of these markers. The model checker's
/// `no-unexpected-strays` invariant asserts that only the sites justified
/// for the explored fault budget ever fire; anything else is a routing or
/// bookkeeping bug, not benign noise. The rationale per site:
///
/// * `SITE_SENTINEL_NOT_LEADER`, `SITE_PHASE1_NOT_LEADER`,
///   `SITE_PHASE2_NOT_LEADER`, `SITE_START_NOT_LEADER` — quadtree messages
///   are addressed by the static [`QuadInfo`] tables, so a leader mismatch
///   cannot arise from delay, loss, duplication or crash faults; these
///   remain `debug_assert`ed and are expected to stay silent under any
///   fault budget.
/// * `SITE_PHASE1_AFTER_COMPLETE` — a `phase 1` report for a `(cell,
///   level)` wave that already completed. Unreachable without duplication;
///   under duplicate faults the dedup below absorbs it (justified allow).
/// * `SITE_ACK1_UNKNOWN_ROOT`, `SITE_ACK2_UNKNOWN_ROOT`,
///   `SITE_COMPLETION_UNKNOWN_ROOT` — `ack` bookkeeping for a cluster this
///   node never joined. Unreachable without message corruption (acks flow
///   strictly child → recruiting parent).
pub mod stray {
    /// `sentinel_complete` for a cell this node does not lead.
    pub const SITE_SENTINEL_NOT_LEADER: &str = "sentinel-complete-not-leader";
    /// `phase 1` addressed to a non-leader.
    pub const SITE_PHASE1_NOT_LEADER: &str = "phase1-not-leader";
    /// `phase 2` addressed to a non-leader.
    pub const SITE_PHASE2_NOT_LEADER: &str = "phase2-not-leader";
    /// Aligned-start timer for a cell this node does not lead.
    pub const SITE_START_NOT_LEADER: &str = "start-timer-not-leader";
    /// `phase 1` for an already-completed `(cell, level)` wave.
    pub const SITE_PHASE1_AFTER_COMPLETE: &str = "phase1-after-complete";
    /// `ack1` for a cluster without local subtree state.
    pub const SITE_ACK1_UNKNOWN_ROOT: &str = "ack1-unknown-root";
    /// `ack2` for a cluster without local subtree state.
    pub const SITE_ACK2_UNKNOWN_ROOT: &str = "ack2-unknown-root";
    /// Completion check for a cluster without local subtree state.
    pub const SITE_COMPLETION_UNKNOWN_ROOT: &str = "completion-unknown-root";
}

/// The ELink protocol state at one node.
#[derive(Clone)]
pub struct ElinkNode {
    feature: Feature,
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    mode: SignalMode,
    quad: Arc<QuadInfo>,
    n: usize,

    /// Whether this node has been clustered (Fig 16 `clustered`).
    pub clustered: bool,
    /// Current cluster root (valid when `clustered`).
    pub root: NodeId,
    /// Current root feature `F_{r_i}`.
    pub root_feature: Feature,
    /// Level `m` of the sentinel that clustered this node.
    pub joined_level: usize,
    /// Cluster-tree parent `p` (self for roots).
    pub parent: NodeId,
    /// Remaining cluster switches (Fig 16 `counter`).
    pub switches_left: u32,

    /// Registry translating cluster-root [`NodeId`]s to the dense
    /// [`NodeHandle`]s that key the flat tables below.
    nodes: NodeTable,
    subtrees: FlatMap<NodeHandle, Subtree>,
    /// Keyed by `(cell, level)` packed into one `u64` (see
    /// [`phase1_key`]) — one contiguous allocation instead of a tree of
    /// two-word tuples.
    phase1_pending: FlatMap<u64, usize>,
    /// Roots of every cluster this node has ever joined. A node never
    /// re-joins a cluster it left: distances to roots are fixed, so a
    /// re-join can never be a quality gain, and (in explicit mode) it would
    /// corrupt the per-cluster `ack` bookkeeping — the Fig 16 `+φ`
    /// tolerance otherwise allows A→B→A oscillation, deadlocking the
    /// completion wave.
    ever_joined: FlatSet<NodeHandle>,
    /// `(cell, level)` fan-in waves that already completed (see
    /// [`phase1_key`]). A duplicated `phase 1` arriving after its wave's
    /// counter was removed would otherwise re-open the counter at full
    /// fan-in and deadlock the synchronization.
    phase1_done: FlatSet<u64>,
    /// Introspection: simulated times at which this node's ELink procedure
    /// was invoked, with the level it was invoked for.
    pub elink_invocations: Vec<(u64, usize)>,
    /// Audit trail of silently discarded events, one [`stray`] marker per
    /// drop. The model checker asserts which sites may fire under a given
    /// fault budget; the vector is part of canonical state so a stray is
    /// never confused with the clean state that ignored it.
    pub stray_drops: Vec<&'static str>,
}

impl ElinkNode {
    /// Creates the protocol instance for one node.
    pub fn new(
        id: NodeId,
        n: usize,
        feature: Feature,
        metric: Arc<dyn Metric>,
        config: ElinkConfig,
        mode: SignalMode,
        quad: Arc<QuadInfo>,
    ) -> ElinkNode {
        let root_feature = feature.clone();
        ElinkNode {
            feature,
            metric,
            config,
            mode,
            quad,
            n,
            clustered: false,
            root: id,
            root_feature,
            joined_level: 0,
            parent: id,
            switches_left: config.max_switches,
            nodes: NodeTable::new(n),
            subtrees: FlatMap::new(),
            phase1_pending: FlatMap::new(),
            ever_joined: FlatSet::new(),
            phase1_done: FlatSet::new(),
            elink_invocations: Vec::new(),
            stray_drops: Vec::new(),
        }
    }

    /// This node's feature.
    pub fn feature(&self) -> &Feature {
        &self.feature
    }

    /// Number of per-cluster subtree entries whose `ack2` wave has not
    /// completed (explicit mode) — zero at a clean quiescence.
    pub fn unsettled_subtrees(&self) -> usize {
        self.subtrees.values().filter(|s| !s.acked).count()
    }

    /// Extraction hook: `(root, root_feature)`; unclustered nodes (possible
    /// only if a run was truncated) report themselves as singleton roots.
    pub fn cluster_state(&self, id: NodeId) -> (NodeId, Feature) {
        if self.clustered {
            (self.root, self.root_feature.clone())
        } else {
            (id, self.feature.clone())
        }
    }

    /// Conservative leaf-detection timeout: an `ack1` takes at most two
    /// worst-case deliveries (expand out, ack back) plus slack. Under ARQ a
    /// delivery may spend several backoff rounds in flight, so this scales
    /// by [`Ctx::max_delivery_delay`], not the raw hop delay.
    fn leaf_timeout(&self, ctx: &Ctx<'_, ElinkMsg>) -> u64 {
        2 * ctx.max_delivery_delay() + 2
    }

    /// The ELink procedure of Fig 16: invoked on a sentinel when signalled.
    // simlint: hot
    fn elink_start(
        &mut self,
        level: usize,
        sentinel_cell: Option<CellId>,
        ctx: &mut Ctx<'_, ElinkMsg>,
    ) {
        self.elink_invocations.push((ctx.now(), level));
        if self.clustered {
            // Fig 16: "if (¬clustered)" — nothing to expand. In explicit
            // mode the synchronization must still observe this sentinel as
            // complete.
            if let Some(cell) = sentinel_cell {
                self.sentinel_complete(cell, ctx);
            }
            return;
        }
        let id = ctx.id();
        // Metrics: a sentinel actually expanding opens (or stretches) the
        // level's growth envelope — [first expansion start, last join].
        ctx.phase_enter(growth_phase(level));
        self.clustered = true;
        self.root = id;
        self.root_feature = self.feature.clone(); // simlint: allow(no-hot-path-alloc): Feature dim <= 4 is inline storage; clone is a memcpy
        self.joined_level = level;
        self.parent = id;
        self.ever_joined.insert(self.nodes.handle(id));
        self.subtrees.insert(
            self.nodes.handle(id),
            Subtree {
                parent: None,
                pending_children: 0,
                wait_done: false,
                acked: false,
                sentinel_cell,
            },
        );
        let msg = ElinkMsg::Expand {
            root: id,
            root_feature: self.feature.clone(), // simlint: allow(no-hot-path-alloc): inline Feature memcpy into the broadcast payload
            level,
        };
        let scalars = self.feature.scalar_cost();
        ctx.broadcast_neighbors(&msg, "expand", scalars);
        if self.mode == SignalMode::Explicit {
            let timeout = self.leaf_timeout(ctx);
            ctx.set_timer(timeout, TIMER_LEAF_BASE + id as u64);
        }
    }

    /// Handles an incoming `expand` (the join/switch rule of Fig 16) — the
    /// hottest function in the tree: every node runs it once per neighbor
    /// expand at every level.
    // simlint: hot
    fn on_expand(
        &mut self,
        from: NodeId,
        root: NodeId,
        root_feature: Feature,
        level: usize,
        ctx: &mut Ctx<'_, ElinkMsg>,
    ) {
        if (self.clustered && self.root == root)
            || self.ever_joined.contains(&self.nodes.handle(root))
        {
            return; // current or former member; re-joining gains nothing
        }
        let d_new = self.metric.distance(&root_feature, &self.feature);
        if d_new > self.config.admission_radius() {
            return;
        }
        let join = if !self.clustered {
            true
        } else {
            // Switch rule (Fig 16): same sentinel level (unless unordered),
            // `d(F_rj, F_i) < d(F_ri, F_i) + φ`, and switch budget left. The
            // `+φ` tolerance is what lets a freshly self-rooted sentinel
            // (root distance 0) dissolve into a same-level neighbor cluster
            // — the mechanism behind "this handles the case when the number
            // of clusters should be less than 5" (§3.2). The same-level
            // rule protects clusters grown from lower levels.
            let d_cur = self.metric.distance(&self.root_feature, &self.feature);
            let level_ok = self.mode == SignalMode::Unordered || level == self.joined_level;
            level_ok && d_new < d_cur + self.config.phi && self.switches_left > 0
        };
        if !join {
            return;
        }
        if self.clustered {
            self.switches_left -= 1;
        }
        self.clustered = true;
        self.root = root;
        self.root_feature = root_feature.clone(); // simlint: allow(no-hot-path-alloc): Feature dim <= 4 is inline storage; clone is a memcpy
        self.joined_level = level;
        self.parent = from;
        self.ever_joined.insert(self.nodes.handle(root));
        // Metrics: every join stretches the level's growth envelope.
        ctx.phase_exit(growth_phase(level));

        if self.mode == SignalMode::Explicit {
            ctx.phase_enter("sync.acks");
            ctx.send(from, ElinkMsg::Ack1 { root }, "ack1", 1);
            self.subtrees.insert(
                self.nodes.handle(root),
                Subtree {
                    parent: Some(from),
                    pending_children: 0,
                    wait_done: false,
                    acked: false,
                    sentinel_cell: None,
                },
            );
            let timeout = self.leaf_timeout(ctx);
            ctx.set_timer(timeout, TIMER_LEAF_BASE + root as u64);
        }
        let msg = ElinkMsg::Expand {
            root,
            root_feature,
            level,
        };
        let scalars = self.root_feature.scalar_cost();
        ctx.broadcast_neighbors(&msg, "expand", scalars);
    }

    /// Completion check for the `ack2` wave of one cluster.
    fn check_completion(&mut self, root: NodeId, ctx: &mut Ctx<'_, ElinkMsg>) {
        let Some(sub) = self.subtrees.get_mut(&self.nodes.handle(root)) else {
            self.stray_drops.push(stray::SITE_COMPLETION_UNKNOWN_ROOT);
            return;
        };
        if sub.acked || !sub.wait_done || sub.pending_children > 0 {
            return;
        }
        sub.acked = true;
        match sub.parent {
            Some(p) => ctx.send(p, ElinkMsg::Ack2 { root }, "ack2", 1),
            None => {
                // This node rooted the cluster: the entire expansion is
                // complete (Fig 18) — report through the quadtree.
                if let Some(cell) = sub.sentinel_cell {
                    self.sentinel_complete(cell, ctx);
                }
            }
        }
    }

    /// A sentinel's expansion for `cell` is complete: feed the quadtree
    /// synchronization (Fig 18 `phase 1`), or start the next level directly
    /// when this is the root cell.
    fn sentinel_complete(&mut self, cell: CellId, ctx: &mut Ctx<'_, ElinkMsg>) {
        // Metrics: the quadtree synchronization envelope opens at the first
        // completion report and closes at the last aligned start receipt.
        ctx.phase_enter("sync.quadtree");
        let Some(led) = self.quad.led_cell(ctx.id(), cell).cloned() else {
            // A sentinel completion for a cell this node does not lead can
            // only arise from a misrouted or stale message; drop it rather
            // than abort the simulation.
            self.stray_drops.push(stray::SITE_SENTINEL_NOT_LEADER);
            debug_assert!(
                false,
                "sentinel_complete on a cell node {} does not lead",
                ctx.id()
            );
            return;
        };
        match (led.parent_cell, led.parent_leader) {
            (Some(pcell), Some(pleader)) => {
                ctx.unicast(
                    pleader,
                    ElinkMsg::Phase1 {
                        cell: pcell,
                        level: led.level,
                    },
                    "phase1",
                    1,
                );
            }
            _ => {
                // Root cell (S_0): level 0 is done — start S_1 directly
                // (the wave's elapsed counter begins here).
                self.start_children(&led, 0, ctx);
            }
        }
    }

    fn start_children(
        &mut self,
        led: &crate::quadinfo::LedCell,
        elapsed: u64,
        ctx: &mut Ctx<'_, ElinkMsg>,
    ) {
        for &(child_cell, child_leader) in &led.children {
            if child_leader == ctx.id() {
                // Leading both the cell and one child: handle locally.
                self.handle_start(child_cell, elapsed, ctx);
            } else {
                let hops = ctx.hops_to(child_leader).unwrap_or(0) as u64;
                ctx.unicast(
                    child_leader,
                    ElinkMsg::Start {
                        cell: child_cell,
                        elapsed: elapsed + hops,
                    },
                    "start",
                    1,
                );
            }
        }
    }

    /// Start-alignment budget: an upper bound (in hops) on the phase-2 +
    /// start cascade from the quadtree root to any sentinel — `Σ κ/2^m < 2κ`
    /// (§5's timing analysis).
    fn start_budget(&self) -> u64 {
        (4.0 * self.config.kappa(self.n)).ceil() as u64
    }

    /// Receives an (aligned) start for a led cell: waits out the residual
    /// per-level budget, then runs ELink. On synchronous networks every
    /// same-level sentinel therefore begins at the same tick, matching the
    /// implicit schedule (§8.4: both variants output the same clusters).
    fn handle_start(&mut self, cell: CellId, elapsed: u64, ctx: &mut Ctx<'_, ElinkMsg>) {
        ctx.phase_exit("sync.quadtree");
        let budget = self.start_budget();
        let wait = budget.saturating_sub(elapsed) * ctx.max_delivery_delay();
        ctx.set_timer(wait, TIMER_START_BASE + cell as u64);
    }

    /// Fan-in of `phase 1` messages at an intermediate (or root) cell.
    fn on_phase1(&mut self, cell: CellId, level: usize, ctx: &mut Ctx<'_, ElinkMsg>) {
        let Some(led) = self.quad.led_cell(ctx.id(), cell).cloned() else {
            self.stray_drops.push(stray::SITE_PHASE1_NOT_LEADER);
            debug_assert!(false, "phase1 addressed to non-leader {}", ctx.id());
            return;
        };
        let key = phase1_key(cell, level);
        if self.phase1_done.contains(&key) {
            // A duplicated `phase 1` after its wave completed: absorbing it
            // here keeps the (removed) fan-in counter from re-opening at
            // full fan-in and deadlocking the next wave.
            self.stray_drops.push(stray::SITE_PHASE1_AFTER_COMPLETE);
            return;
        }
        let fanin = led.phase1_fanin(level, &self.quad);
        let pending = self.phase1_pending.or_insert_with(key, || fanin);
        debug_assert!(*pending > 0, "phase1 overflow at cell {cell}");
        *pending -= 1;
        if *pending > 0 {
            return;
        }
        self.phase1_pending.remove(&key);
        self.phase1_done.insert(key);
        match (led.parent_cell, led.parent_leader) {
            (Some(pcell), Some(pleader)) => {
                ctx.unicast(
                    pleader,
                    ElinkMsg::Phase1 { cell: pcell, level },
                    "phase1",
                    1,
                );
            }
            _ => {
                // Quadtree root: all of S_level finished — phase 2 down.
                self.on_phase2(cell, level, 0, ctx);
            }
        }
    }

    /// `phase 2` down-sweep (Fig 18), threading the alignment counter.
    fn on_phase2(&mut self, cell: CellId, level: usize, elapsed: u64, ctx: &mut Ctx<'_, ElinkMsg>) {
        let Some(led) = self.quad.led_cell(ctx.id(), cell).cloned() else {
            self.stray_drops.push(stray::SITE_PHASE2_NOT_LEADER);
            debug_assert!(false, "phase2 addressed to non-leader {}", ctx.id());
            return;
        };
        if led.level == level {
            // Instruct the children (the S_{level+1} sentinels) to start.
            self.start_children(&led, elapsed, ctx);
            return;
        }
        for &(child_cell, child_leader) in &led.children {
            // Only branches that actually contain level-`level` cells
            // participate in the wave.
            if self.quad.subtree_max_level[child_cell] < level {
                continue;
            }
            if child_leader == ctx.id() {
                self.on_phase2(child_cell, level, elapsed, ctx);
            } else {
                let hops = ctx.hops_to(child_leader).unwrap_or(0) as u64;
                ctx.unicast(
                    child_leader,
                    ElinkMsg::Phase2 {
                        cell: child_cell,
                        level,
                        elapsed: elapsed + hops,
                    },
                    "phase2",
                    1,
                );
            }
        }
    }
}

impl Protocol for ElinkNode {
    type Msg = ElinkMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ElinkMsg>) {
        match self.mode {
            SignalMode::Implicit => {
                let level = self.quad.sentinel_level[ctx.id()];
                let start = self.config.schedule_start(self.n, level).ceil() as u64;
                ctx.set_timer(start, TIMER_SCHEDULE);
            }
            SignalMode::Unordered => {
                ctx.set_timer(0, TIMER_SCHEDULE);
            }
            SignalMode::Explicit => {
                if ctx.id() == self.quad.root_leader {
                    // The S_0 sentinel needs no alignment: it is the only
                    // member of its level.
                    let root_cell = self.quad.root_cell;
                    let root_level = 0;
                    self.elink_start(root_level, Some(root_cell), ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<'_, ElinkMsg>) {
        if timer >= TIMER_START_BASE {
            let cell = (timer - TIMER_START_BASE) as CellId;
            let Some(level) = self.quad.led_cell(ctx.id(), cell).map(|led| led.level) else {
                self.stray_drops.push(stray::SITE_START_NOT_LEADER);
                debug_assert!(
                    false,
                    "start timer for a cell node {} does not lead",
                    ctx.id()
                );
                return;
            };
            self.elink_start(level, Some(cell), ctx);
            return;
        }
        if timer == TIMER_SCHEDULE {
            // Unordered mode flattens all levels to 0 so the same-level
            // switch rule never blocks (levels are concurrent anyway).
            let level = match self.mode {
                SignalMode::Unordered => 0,
                _ => self.quad.sentinel_level[ctx.id()],
            };
            self.elink_start(level, None, ctx);
        } else {
            let root = (timer - TIMER_LEAF_BASE) as NodeId;
            if let Some(sub) = self.subtrees.get_mut(&self.nodes.handle(root)) {
                sub.wait_done = true;
            }
            self.check_completion(root, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: ElinkMsg, ctx: &mut Ctx<'_, ElinkMsg>) {
        match msg {
            ElinkMsg::Expand {
                root,
                root_feature,
                level,
            } => self.on_expand(from, root, root_feature, level, ctx),
            ElinkMsg::Ack1 { root } => {
                // Acks flow strictly child → recruiting parent, so the
                // subtree entry must exist; a miss is a misrouted message.
                // Note a *duplicated* ack1 does hit the entry and inflates
                // `pending_children` — a protocol-level non-tolerance that
                // deadlocks completion. That is deliberate: duplicate
                // suppression is the reliable transport's job (ARQ dedups
                // by sequence number), and the regression tests +
                // checker scenarios pin the failure shape.
                if let Some(sub) = self.subtrees.get_mut(&self.nodes.handle(root)) {
                    sub.pending_children += 1;
                } else {
                    self.stray_drops.push(stray::SITE_ACK1_UNKNOWN_ROOT);
                }
            }
            ElinkMsg::Ack2 { root } => {
                ctx.phase_exit("sync.acks");
                // Same contract as ack1: a duplicated ack2 double-decrements
                // and completes the wave before the real children report —
                // detected by the checker, prevented in deployment by ARQ.
                if let Some(sub) = self.subtrees.get_mut(&self.nodes.handle(root)) {
                    sub.pending_children = sub.pending_children.saturating_sub(1);
                    self.check_completion(root, ctx);
                } else {
                    self.stray_drops.push(stray::SITE_ACK2_UNKNOWN_ROOT);
                }
            }
            ElinkMsg::Phase1 { cell, level } => self.on_phase1(cell, level, ctx),
            ElinkMsg::Phase2 {
                cell,
                level,
                elapsed,
            } => self.on_phase2(cell, level, elapsed, ctx),
            ElinkMsg::Start { cell, elapsed } => self.handle_start(cell, elapsed, ctx),
        }
    }
}

/// Canonical state for model-checker fingerprinting.
///
/// Soundness: the rendering must cover every field a handler *reads* to
/// decide future behavior — two states with equal canonical forms are
/// merged, so an omitted behavior-relevant field would unsoundly prune
/// genuinely distinct schedules. Covered: the Fig 16 join state
/// (`clustered`, `root`, `root_feature`, `joined_level`, `parent`,
/// `switches_left`), the explicit-mode bookkeeping (`subtrees`,
/// `phase1_pending`, `phase1_done`, `ever_joined`), and the stray-drop
/// audit trail (part of observable state: predicates read it).
///
/// Deliberately excluded, with why each exclusion is sound:
///
/// * `feature`, `metric`, `config`, `mode`, `quad`, `n`, `nodes` — fixed at
///   construction and never written by any handler; identical across all
///   states of one exploration.
/// * `elink_invocations` — introspection only (timing metrics); no handler
///   ever reads it, so it cannot influence any successor state.
impl Canonicalize for ElinkNode {
    fn canonicalize(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "c{}r{}l{}p{}s{}F",
            self.clustered as u8, self.root, self.joined_level, self.parent, self.switches_left
        );
        for &w in self.root_feature.components() {
            canon_f64(out, w);
        }
        out.push_str("|st:");
        for (h, sub) in self.subtrees.iter() {
            let _ = write!(
                out,
                "[{}>{:?}c{}w{}a{}s{:?}]",
                h.index(),
                sub.parent,
                sub.pending_children,
                sub.wait_done as u8,
                sub.acked as u8,
                sub.sentinel_cell
            );
        }
        out.push_str("|p1:");
        for (k, pending) in self.phase1_pending.iter() {
            let _ = write!(out, "[{k}:{pending}]");
        }
        out.push_str("|p1d:");
        for k in self.phase1_done.iter() {
            let _ = write!(out, "{k},");
        }
        out.push_str("|ej:");
        for h in self.ever_joined.iter() {
            let _ = write!(out, "{},", h.index());
        }
        out.push_str("|x:");
        for site in &self.stray_drops {
            out.push_str(site);
            out.push(',');
        }
    }
}
