//! ELink tuning parameters.

/// Parameters of the ELink algorithm (§3–§5).
#[derive(Debug, Clone, Copy)]
pub struct ElinkConfig {
    /// The clustering dissimilarity threshold δ: every pair of nodes inside
    /// a cluster is within feature distance δ. Expansion admits nodes within
    /// δ/2 of the cluster root's feature.
    pub delta: f64,
    /// The switch-gain threshold φ: a clustered node switches to a new
    /// cluster only if its distance to the new root improves on its current
    /// root distance by at least φ. The experiments use φ = 0.1 δ (§8.4).
    pub phi: f64,
    /// Maximum number of cluster switches per node (the constant `c`,
    /// "usually small, around 3–5"; experiments use 4).
    pub max_switches: u32,
    /// Path stretch factor γ used in the implicit schedule
    /// `κ = (1+γ)√(N/2)` ("usually small, around 0.2–0.4", §4). The default
    /// is deliberately at the conservative end so that level timers never
    /// under-allot expansion time on non-grid topologies.
    pub gamma: f64,
}

impl ElinkConfig {
    /// The paper's experimental defaults for a given δ: φ = 0.1 δ, c = 4.
    pub fn for_delta(delta: f64) -> ElinkConfig {
        assert!(delta > 0.0, "delta must be positive");
        ElinkConfig {
            delta,
            phi: 0.1 * delta,
            max_switches: 4,
            gamma: 0.4,
        }
    }

    /// The admission radius δ/2 used during expansion.
    pub fn admission_radius(&self) -> f64 {
        self.delta / 2.0
    }

    /// The implicit-schedule constant κ = (1+γ)√(N/2) (§4).
    pub fn kappa(&self, n: usize) -> f64 {
        (1.0 + self.gamma) * (n as f64 / 2.0).sqrt()
    }

    /// Expansion interval `t_l = κ(1 + 1/2 + … + 1/2^l)` for a sentinel at
    /// level `l` (§4).
    pub fn t_level(&self, n: usize, level: usize) -> f64 {
        let kappa = self.kappa(n);
        let geom: f64 = (0..=level).map(|i| 0.5_f64.powi(i as i32)).sum();
        kappa * geom
    }

    /// Start time `T = Σ_{j=0}^{l-1} t_j` of sentinel set `S_l` in the
    /// implicit schedule (§4); 0 for the root sentinel.
    pub fn schedule_start(&self, n: usize, level: usize) -> f64 {
        (0..level).map(|j| self.t_level(n, j)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ElinkConfig::for_delta(6.0);
        assert_eq!(c.delta, 6.0);
        assert!((c.phi - 0.6).abs() < 1e-12);
        assert_eq!(c.max_switches, 4);
        assert_eq!(c.admission_radius(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_panics() {
        let _ = ElinkConfig::for_delta(0.0);
    }

    #[test]
    fn kappa_formula() {
        let c = ElinkConfig {
            gamma: 0.4,
            ..ElinkConfig::for_delta(1.0)
        };
        // κ = 1.4 * sqrt(50) for N = 100.
        assert!((c.kappa(100) - 1.4 * 50.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn t_levels_increase_and_bounded_by_2kappa() {
        let c = ElinkConfig::for_delta(1.0);
        let n = 256;
        let kappa = c.kappa(n);
        let mut prev = 0.0;
        for l in 0..10 {
            let t = c.t_level(n, l);
            assert!(t > prev, "t_l must increase with l");
            assert!(t < 2.0 * kappa, "t_l < 2κ (geometric sum bound)");
            prev = t;
        }
    }

    #[test]
    fn schedule_starts_accumulate() {
        let c = ElinkConfig::for_delta(1.0);
        let n = 64;
        assert_eq!(c.schedule_start(n, 0), 0.0);
        let s1 = c.schedule_start(n, 1);
        let s2 = c.schedule_start(n, 2);
        assert!((s1 - c.t_level(n, 0)).abs() < 1e-9);
        assert!((s2 - (c.t_level(n, 0) + c.t_level(n, 1))).abs() < 1e-9);
    }
}
