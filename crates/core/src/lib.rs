//! **ELink** — the paper's distributed spatial δ-clustering algorithm
//! (§3–§6), implemented as message-passing protocols on the
//! [`elink_netsim`] discrete-event simulator.
//!
//! # Overview
//!
//! ELink partitions a sensor network into *δ-clusters*: connected subgraphs
//! whose members' pairwise feature distance is at most δ (Definition 1).
//! Finding the minimum-cardinality δ-clustering is NP-complete and
//! inapproximable (Theorem 1), so ELink is a scheduling heuristic: cluster
//! growth starts from *sentinel sets* — quadtree cell leaders, level by
//! level — each sentinel growing a cluster of nodes within δ/2 of its own
//! feature (triangle inequality then gives pairwise δ-compactness). Nodes
//! may switch clusters at most `c` times when the switch improves root
//! distance by at least φ.
//!
//! Two signalling disciplines order the levels:
//!
//! * [`run_implicit`] (§4) — synchronous networks; each sentinel at level l
//!   arms a timer `T = Σ_{j<l} t_j`, `t_l = κ(1 + 1/2 + … + 1/2^l)`,
//!   `κ = (1+γ)√(N/2)`.
//! * [`run_explicit`] (§5) — asynchronous networks; `ack1/ack2` completion
//!   waves inside cluster trees, then `phase 1`/`phase 2` sweeps up and down
//!   the quadtree, then `start` messages to the next level.
//!
//! Both run in `O(√N log N)` time and `O(N)` messages (Theorems 2 & 3);
//! the integration tests check these growth curves empirically.
//!
//! [`run_unordered`] implements the §5 ablation (all sentinels at once) that
//! the paper notes has "poor clustering quality due to excessive contention".
//!
//! [`maintenance`] implements the §6 slack-parameterized update protocol
//! (conditions A₁–A₃).

// Every public item must carry a doc comment (simlint pub-doc-coverage
// enforces the same invariant pre-rustdoc).
#![warn(missing_docs)]

pub mod clustering;
/// ELink protocol parameters (δ, switching budget, thresholds).
pub mod config;
/// Analytic §6 maintenance cost model (updates, slack rule).
pub mod maintenance;
/// Message-passing maintenance layer (updates, re-anchoring, failover).
pub mod maintenance_protocol;
/// Per-node neighbor/cluster bookkeeping tables.
pub mod node_table;
/// The ELink growth protocol (§4–§5): expand, merge, switch waves.
pub mod protocol;
/// Static quadtree leadership metadata shared by all nodes.
pub mod quadinfo;
/// One-call drivers that wire nodes, network and simulator together.
pub mod runner;

pub use clustering::{validate_delta_clustering, ClusterInfo, Clustering, ValidationError};
pub use config::ElinkConfig;
pub use maintenance::{MaintenanceSim, UpdateOutcome};
pub use maintenance_protocol::{maintenance_nodes, slack_conditions_hold, MaintMsg, MaintNode};
pub use node_table::{FlatMap, FlatSet, NodeHandle, NodeTable};
pub use protocol::{stray, ElinkMsg, ElinkNode, SignalMode};
pub use runner::{
    build_sim, run_explicit, run_implicit, run_unordered, run_with_link, run_with_link_arq,
    run_with_options, ElinkOutcome, RunOptions,
};
