//! Dynamic cluster maintenance with slack (§6).
//!
//! After the initial clustering (performed at reduced threshold `δ − 2Δ`),
//! feature updates are absorbed locally whenever any of the slack conditions
//!
//! ```text
//! A₁: d(F_i, F'_i) ≤ Δ
//! A₂: d(F'_i, F_{r_i}) − d(F_i, F_{r_i}) ≤ Δ
//! A₃: d(F'_i, F_{r_i}) ≤ δ − Δ
//! ```
//!
//! holds (each implies, by the triangle inequality, that δ-compactness is
//! not violated). Only when all three fail does the node fetch the fresh
//! root feature up the cluster tree and possibly detach — merging with a
//! neighboring cluster whose root is within δ, or becoming a singleton.
//! Roots whose own feature drifts by more than Δ broadcast the new feature
//! down the tree.
//!
//! Fig 10/11 measure *message costs* and *cluster counts* of this process;
//! neither depends on event timing, so the maintenance simulator is a
//! deterministic state machine with explicit message accounting rather than
//! a netsim protocol (see DESIGN.md).

use crate::clustering::Clustering;
use elink_metric::{Feature, Metric};
use elink_netsim::CostBook;
use elink_topology::{NodeId, Topology};
use std::sync::Arc;

/// What happened when a node absorbed a feature update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// One of A₁/A₂/A₃ held — no messages at all.
    LocalOnly,
    /// The root feature was re-fetched and the node stayed in its cluster.
    RefreshedAndStayed,
    /// The node detached and merged with a neighbor's cluster.
    Merged {
        /// The root of the cluster joined.
        new_root: NodeId,
    },
    /// The node detached and became a singleton cluster.
    Singleton,
    /// The update was at a cluster root and drifted beyond Δ: the new root
    /// feature was broadcast down the tree (some members may have detached).
    RootBroadcast {
        /// How many members detached as a result.
        detached: usize,
    },
}

/// Mutable maintenance state derived from an initial clustering.
pub struct MaintenanceSim {
    topology: Arc<Topology>,
    metric: Arc<dyn Metric>,
    delta: f64,
    slack: f64,
    /// Live feature per node.
    features: Vec<Feature>,
    /// Anchor (last synchronized) feature per node — `F_i` in A₁.
    anchor: Vec<Feature>,
    /// Root node per node.
    root_of: Vec<NodeId>,
    /// Cached root feature per node — `F_{r_i}` in A₂/A₃.
    cached_root_feature: Vec<Feature>,
    /// Cluster-tree parent (None at roots).
    tree_parent: Vec<Option<NodeId>>,
    /// Nodes that have crash-failed (excluded from clustering and updates).
    failed: Vec<bool>,
    stats: CostBook,
}

impl MaintenanceSim {
    /// Starts maintenance from an initial clustering (which should have been
    /// computed at `δ − 2Δ`, per §6) and the features it was computed on.
    pub fn new(
        clustering: &Clustering,
        topology: Arc<Topology>,
        metric: Arc<dyn Metric>,
        features: Vec<Feature>,
        delta: f64,
        slack: f64,
    ) -> MaintenanceSim {
        assert!(slack >= 0.0 && 2.0 * slack < delta, "need 0 ≤ 2Δ < δ");
        let n = topology.n();
        assert_eq!(features.len(), n);
        let root_of: Vec<usize> = (0..n).map(|v| clustering.root_of(v)).collect();
        let cached_root_feature: Vec<Feature> =
            root_of.iter().map(|&root| features[root].clone()).collect();
        MaintenanceSim {
            topology,
            metric,
            delta,
            slack,
            anchor: features.clone(),
            features,
            root_of,
            cached_root_feature,
            tree_parent: clustering.tree_parent.clone(),
            failed: vec![false; n],
            stats: CostBook::new(),
        }
    }

    /// Message statistics accumulated so far.
    pub fn costs(&self) -> &CostBook {
        &self.stats
    }

    /// Current number of clusters (failed nodes excluded).
    pub fn cluster_count(&self) -> usize {
        let mut roots: Vec<NodeId> = (0..self.root_of.len())
            .filter(|&v| !self.failed[v])
            .map(|v| self.root_of[v])
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    /// Whether a node has failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node]
    }

    /// Current root of a node.
    pub fn root_of(&self, node: NodeId) -> NodeId {
        self.root_of[node]
    }

    /// Current feature of a node.
    pub fn feature_of(&self, node: NodeId) -> &Feature {
        &self.features[node]
    }

    /// Hop depth of `node` in its cluster tree.
    fn tree_depth(&self, node: NodeId) -> u64 {
        let mut depth = 0;
        let mut cur = node;
        while let Some(p) = self.tree_parent[cur] {
            depth += 1;
            cur = p;
            if depth as usize > self.topology.n() {
                break; // defensive: corrupted tree
            }
        }
        depth
    }

    /// Absorbs a feature update at `node`, returning what happened and
    /// charging messages per the §6 protocol.
    pub fn update(&mut self, node: NodeId, new_feature: Feature) -> UpdateOutcome {
        assert!(!self.failed[node], "update from a failed node");
        let is_root = self.root_of[node] == node;
        if is_root {
            return self.update_at_root(node, new_feature);
        }
        let d_anchor = self.metric.distance(&self.anchor[node], &new_feature);
        let d_new_root = self
            .metric
            .distance(&new_feature, &self.cached_root_feature[node]);
        let d_old_root = self
            .metric
            .distance(&self.anchor[node], &self.cached_root_feature[node]);

        let a1 = d_anchor <= self.slack;
        let a2 = d_new_root - d_old_root <= self.slack;
        let a3 = d_new_root <= self.delta - self.slack;
        if a1 || a2 || a3 {
            self.features[node] = new_feature;
            return UpdateOutcome::LocalOnly;
        }

        // All conditions violated: fetch the fresh root feature — a request
        // up the cluster tree and the feature back down.
        let depth = self.tree_depth(node);
        let root = self.root_of[node];
        let dim = self.features[root].scalar_cost();
        self.stats.record("maint_fetch", depth, 1);
        self.stats.record("maint_fetch", depth, dim);
        let fresh_root_feature = self.features[root].clone();
        self.cached_root_feature[node] = fresh_root_feature.clone();

        let d = self.metric.distance(&new_feature, &fresh_root_feature);
        self.features[node] = new_feature.clone();
        if d <= self.delta {
            self.anchor[node] = new_feature;
            return UpdateOutcome::RefreshedAndStayed;
        }

        // Detach and try to merge with a neighbor's cluster (§6: merge with
        // neighbor k if d(F'_i, F_{r_k}) ≤ δ).
        self.detach(node);
        let neighbors: Vec<NodeId> = self
            .topology
            .graph()
            .neighbors(node)
            .iter()
            .map(|&w| w as usize)
            .collect();
        // Ask each neighbor for its root feature: 1 scalar out, dim back.
        for _ in &neighbors {
            self.stats.record("maint_merge", 1, 1);
            self.stats.record("maint_merge", 1, dim);
        }
        for &k in &neighbors {
            if self.failed[k] || self.root_of[k] == node {
                continue; // failed/own-subtree neighbors are not targets
            }
            let rk = self.root_of[k];
            let d_k = self.metric.distance(&new_feature, &self.features[rk]);
            if d_k <= self.delta {
                // Join under neighbor k; register with the root (path up k's
                // tree carrying the new member's feature).
                self.root_of[node] = rk;
                self.tree_parent[node] = Some(k);
                self.cached_root_feature[node] = self.features[rk].clone();
                self.anchor[node] = new_feature;
                let reg_hops = self.tree_depth(k) + 1;
                self.stats.record("maint_merge", reg_hops, dim);
                return UpdateOutcome::Merged { new_root: rk };
            }
        }
        self.anchor[node] = new_feature;
        UpdateOutcome::Singleton
    }

    /// Root-side update: drift beyond Δ triggers a broadcast of the new
    /// root feature down the tree; members re-evaluate and may detach.
    fn update_at_root(&mut self, root: NodeId, new_feature: Feature) -> UpdateOutcome {
        let drift = self.metric.distance(&self.anchor[root], &new_feature);
        self.features[root] = new_feature.clone();
        self.cached_root_feature[root] = new_feature.clone();
        if drift <= self.slack {
            return UpdateOutcome::LocalOnly;
        }
        self.anchor[root] = new_feature.clone();

        let members: Vec<NodeId> = (0..self.topology.n())
            .filter(|&v| v != root && !self.failed[v] && self.root_of[v] == root)
            .collect();
        if members.is_empty() {
            // A singleton root has no tree to notify; apply the §6 merge
            // rule instead — join a neighbor's cluster whose root is within
            // δ of the new feature (querying each neighbor for its root
            // feature, as in the member detach path).
            let dim = new_feature.scalar_cost();
            let neighbors: Vec<NodeId> = self
                .topology
                .graph()
                .neighbors(root)
                .iter()
                .map(|&w| w as usize)
                .collect();
            for _ in &neighbors {
                self.stats.record("maint_merge", 1, 1);
                self.stats.record("maint_merge", 1, dim);
            }
            for &k in &neighbors {
                if self.failed[k] {
                    continue;
                }
                let rk = self.root_of[k];
                if rk == root {
                    continue;
                }
                let d_k = self.metric.distance(&new_feature, &self.features[rk]);
                if d_k <= self.delta {
                    self.root_of[root] = rk;
                    self.tree_parent[root] = Some(k);
                    self.cached_root_feature[root] = self.features[rk].clone();
                    let reg_hops = self.tree_depth(k) + 1;
                    self.stats.record("maint_merge", reg_hops, dim);
                    return UpdateOutcome::Merged { new_root: rk };
                }
            }
            return UpdateOutcome::Singleton;
        }
        // Broadcast down the cluster tree, top-down: one transmission per
        // traversed tree edge, carrying the feature. A member that violates
        // δ against the new root feature detaches on the spot (its children
        // re-root their subtrees) and the broadcast does not continue below
        // it — mirroring the event-driven protocol exactly.
        let dim = new_feature.scalar_cost();
        let n = self.topology.n();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &v in &members {
            if let Some(p) = self.tree_parent[v] {
                children[p].push(v);
            }
        }
        let mut detached = 0;
        let mut stack: Vec<NodeId> = children[root].clone();
        while let Some(v) = stack.pop() {
            self.stats.record("maint_root_bcast", 1, dim);
            self.cached_root_feature[v] = new_feature.clone();
            let d = self.metric.distance(&self.features[v], &new_feature);
            if d > self.delta {
                self.detach(v);
                detached += 1;
            } else {
                stack.extend(children[v].iter().copied());
            }
        }
        UpdateOutcome::RootBroadcast { detached }
    }

    /// Detaches `node` into a singleton (it may merge elsewhere right
    /// after, per §6). Each direct cluster-tree child of the departing node
    /// becomes the root of its own subtree cluster — the same
    /// re-organization as node failure, so followers never end up pointing
    /// at a root that has left (the invariant the property tests check).
    /// Costs: one control message to the old parent, plus one
    /// feature-carrying announcement per re-rooted subtree edge (kind
    /// `maint_detach`), matching [`crate::maintenance_protocol`].
    fn detach(&mut self, node: NodeId) {
        let old_root = self.root_of[node];
        // Tell the old tree parent to drop this child (one control message).
        if self.tree_parent[node].is_some() {
            self.stats.record("maint_detach", 1, 1);
        }
        self.tree_parent[node] = None;
        self.root_of[node] = node;
        self.cached_root_feature[node] = self.features[node].clone();
        if old_root == node {
            return;
        }
        let n = self.topology.n();
        let children: Vec<NodeId> = (0..n)
            .filter(|&v| !self.failed[v] && self.tree_parent[v] == Some(node))
            .collect();
        for &child in &children {
            self.tree_parent[child] = None;
            let dim = self.features[child].scalar_cost();
            let mut subtree_edges = 0u64;
            for v in 0..n {
                if v == child || self.failed[v] || self.root_of[v] != old_root {
                    continue;
                }
                let mut cur = v;
                let mut hops = 0;
                let through = loop {
                    if cur == child {
                        break true;
                    }
                    match self.tree_parent[cur] {
                        Some(p) if !self.failed[p] => {
                            cur = p;
                            hops += 1;
                            if hops > n {
                                break false;
                            }
                        }
                        _ => break false,
                    }
                };
                if through {
                    self.root_of[v] = child;
                    self.cached_root_feature[v] = self.features[child].clone();
                    subtree_edges += 1;
                }
            }
            self.root_of[child] = child;
            self.cached_root_feature[child] = self.features[child].clone();
            self.stats.record("maint_detach", subtree_edges + 1, dim);
        }
    }

    /// Crash-fails `node`: it stops participating (the §1 motivation —
    /// in-network operation must survive node loss without a central point
    /// of failure). Every cluster-tree child of the failed node detects the
    /// silence (a probe message each) and becomes the root of its own
    /// subtree cluster; the subtree members learn their new root feature
    /// (one message per tree edge). Returns the number of new clusters
    /// carved out of the failed node's cluster.
    pub fn fail_node(&mut self, node: NodeId) -> usize {
        assert!(!self.failed[node], "node already failed");
        let n = self.topology.n();
        let old_root = self.root_of[node];
        // Children of the failed node in the cluster tree.
        let children: Vec<NodeId> = (0..n)
            .filter(|&v| !self.failed[v] && self.tree_parent[v] == Some(node))
            .collect();
        self.failed[node] = true;
        self.tree_parent[node] = None;
        self.root_of[node] = node;

        let mut new_clusters = 0;
        for &child in &children {
            // Silence detection probe.
            self.stats.record("maint_fail_probe", 1, 1);
            // The child roots its own subtree: every member whose tree path
            // runs through `child` follows it.
            let dim = self.features[child].scalar_cost();
            self.tree_parent[child] = None;
            let mut subtree_size = 0u64;
            for v in 0..n {
                if self.failed[v] {
                    continue;
                }
                let mut cur = v;
                let mut hops = 0;
                let through = loop {
                    if cur == child {
                        break true;
                    }
                    match self.tree_parent[cur] {
                        Some(p) if !self.failed[p] => {
                            cur = p;
                            hops += 1;
                            if hops > n {
                                break false;
                            }
                        }
                        _ => break false,
                    }
                };
                if through {
                    self.root_of[v] = child;
                    self.cached_root_feature[v] = self.features[child].clone();
                    subtree_size += 1;
                }
            }
            // New-root announcement down the subtree (size − 1 tree edges).
            self.stats
                .record("maint_fail_reroot", subtree_size.saturating_sub(1), dim);
            new_clusters += 1;
        }
        // If the failed node was an interior member (not the root), the
        // remainder of the old cluster is intact and keeps its root; if it
        // *was* the root, each child subtree is now its own cluster.
        let _ = old_root;
        new_clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use elink_metric::Absolute;

    /// 1×4 path, all in one cluster rooted at node 0, features all 10.0.
    fn setup(delta: f64, slack: f64) -> MaintenanceSim {
        let topo = Topology::grid(1, 4);
        let features: Vec<Feature> = (0..4).map(|_| Feature::scalar(10.0)).collect();
        let states: Vec<(NodeId, Feature)> = (0..4).map(|_| (0, Feature::scalar(10.0))).collect();
        let clustering = Clustering::from_node_states(&states, &topo, &Absolute);
        MaintenanceSim::new(
            &clustering,
            Arc::new(topo),
            Arc::new(Absolute),
            features,
            delta,
            slack,
        )
    }

    #[test]
    fn small_update_is_free() {
        let mut sim = setup(6.0, 1.0);
        let outcome = sim.update(2, Feature::scalar(10.5));
        assert_eq!(outcome, UpdateOutcome::LocalOnly);
        assert_eq!(sim.costs().total_cost(), 0);
    }

    #[test]
    fn a3_absorbs_moderate_update_without_messages() {
        // d(F', F_r) = 3.0 ≤ δ − Δ = 5 even though A1 fails (drift 3 > 1).
        let mut sim = setup(6.0, 1.0);
        let outcome = sim.update(2, Feature::scalar(13.0));
        assert_eq!(outcome, UpdateOutcome::LocalOnly);
        assert_eq!(sim.costs().total_cost(), 0);
    }

    #[test]
    fn large_update_fetches_root_and_stays_if_within_delta() {
        let mut sim = setup(6.0, 0.5);
        // d to root = 5.8 > δ − Δ = 5.5, drift 5.8 > Δ, growth > Δ: fetch.
        let outcome = sim.update(3, Feature::scalar(15.8));
        assert_eq!(outcome, UpdateOutcome::RefreshedAndStayed);
        assert!(sim.costs().total_cost() > 0);
        assert_eq!(sim.cluster_count(), 1);
    }

    #[test]
    fn divergent_update_detaches_into_singleton() {
        let mut sim = setup(6.0, 0.5);
        let outcome = sim.update(3, Feature::scalar(50.0));
        // Neighbors all share the old cluster whose root is far: singleton.
        assert_eq!(outcome, UpdateOutcome::Singleton);
        assert_eq!(sim.cluster_count(), 2);
        assert_eq!(sim.root_of(3), 3);
    }

    #[test]
    fn detached_node_can_merge_back_later() {
        let mut sim = setup(6.0, 0.5);
        assert_eq!(
            sim.update(3, Feature::scalar(50.0)),
            UpdateOutcome::Singleton
        );
        // Coming back within δ of node 2's cluster root (10.0): merge.
        let outcome = sim.update(3, Feature::scalar(12.0));
        assert_eq!(outcome, UpdateOutcome::Merged { new_root: 0 });
        assert_eq!(sim.cluster_count(), 1);
    }

    #[test]
    fn root_drift_broadcasts_and_detaches_outliers() {
        let mut sim = setup(6.0, 0.5);
        // Move member 3 to the edge of tolerance first (absorbed by A3).
        assert_eq!(
            sim.update(3, Feature::scalar(14.0)),
            UpdateOutcome::LocalOnly
        );
        // Root jumps far: member 3 (at 14.0) is beyond δ of the new root.
        let outcome = sim.update(0, Feature::scalar(4.0));
        match outcome {
            UpdateOutcome::RootBroadcast { detached } => assert_eq!(detached, 1),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(sim.costs().kind("maint_root_bcast").cost > 0);
        assert_eq!(sim.cluster_count(), 2);
    }

    #[test]
    fn mid_tree_detach_reroots_child_subtrees() {
        let mut sim = setup(6.0, 0.5);
        // Node 1 is on the path 0-1-2-3. Detach it with a far value that is
        // also far from its neighbors' cluster roots.
        let outcome = sim.update(1, Feature::scalar(100.0));
        assert_eq!(outcome, UpdateOutcome::Singleton);
        // Node 1's child (2) roots its own subtree {2, 3}; the detached
        // node is a singleton free to merge elsewhere later.
        assert_eq!(sim.root_of(2), 2);
        assert_eq!(sim.root_of(3), 2);
        assert_eq!(sim.root_of(1), 1);
        assert_eq!(sim.root_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "2Δ < δ")]
    fn oversized_slack_rejected() {
        let _ = setup(6.0, 3.0);
    }

    #[test]
    fn member_failure_splits_subtree() {
        // Path 0-1-2-3 rooted at 0; failing node 1 orphans {2,3}, which
        // re-root at node 2.
        let mut sim = setup(6.0, 1.0);
        let new = sim.fail_node(1);
        assert_eq!(new, 1);
        assert!(sim.is_failed(1));
        assert_eq!(sim.root_of(2), 2);
        assert_eq!(sim.root_of(3), 2);
        assert_eq!(sim.root_of(0), 0);
        assert_eq!(sim.cluster_count(), 2);
        assert!(sim.costs().kind("maint_fail_probe").cost > 0);
    }

    #[test]
    fn root_failure_promotes_children() {
        let mut sim = setup(6.0, 1.0);
        let new = sim.fail_node(0);
        assert_eq!(new, 1); // node 1 was root 0's only tree child
        assert_eq!(sim.root_of(1), 1);
        assert_eq!(sim.root_of(3), 1);
        assert_eq!(sim.cluster_count(), 1);
    }

    #[test]
    fn leaf_failure_changes_nothing_else() {
        let mut sim = setup(6.0, 1.0);
        let new = sim.fail_node(3);
        assert_eq!(new, 0);
        assert_eq!(sim.cluster_count(), 1);
        assert_eq!(sim.root_of(2), 0);
    }

    #[test]
    fn orphans_can_merge_back_via_updates() {
        let mut sim = setup(6.0, 1.0);
        sim.fail_node(1);
        assert_eq!(sim.cluster_count(), 2);
        // Node 2's next significant update merges it into... its only live
        // non-subtree neighbor is the failed node 1, so it stays put; but a
        // singleton-root drift still works without touching failed nodes.
        let out = sim.update(2, Feature::scalar(10.1));
        assert!(matches!(
            out,
            UpdateOutcome::LocalOnly | UpdateOutcome::RootBroadcast { .. }
        ));
        assert_eq!(sim.cluster_count(), 2);
    }

    #[test]
    #[should_panic(expected = "update from a failed node")]
    fn updates_from_failed_nodes_rejected() {
        let mut sim = setup(6.0, 1.0);
        sim.fail_node(2);
        let _ = sim.update(2, Feature::scalar(1.0));
    }

    #[test]
    fn update_costs_scale_with_slack() {
        // More slack => fewer triggered messages for the same stream.
        let stream: Vec<f64> = (0..200)
            .map(|i| 10.0 + 3.0 * ((i as f64) * 0.37).sin())
            .collect();
        let mut tight = setup(8.0, 0.2);
        let mut loose = setup(8.0, 2.0);
        for (i, &x) in stream.iter().enumerate() {
            let node = 1 + (i % 3); // members only
            tight.update(node, Feature::scalar(x));
            loose.update(node, Feature::scalar(x));
        }
        assert!(
            loose.costs().total_cost() <= tight.costs().total_cost(),
            "loose {} > tight {}",
            loose.costs().total_cost(),
            tight.costs().total_cost()
        );
    }
}
