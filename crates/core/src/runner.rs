//! One-call runners for the three ELink variants.

use crate::clustering::Clustering;
use crate::config::ElinkConfig;
use crate::protocol::{ElinkNode, SignalMode};
use crate::quadinfo::QuadInfo;
use elink_metric::{Feature, Metric};
use elink_netsim::{
    ArqConfig, CostBook, DelayModel, LinkModel, Metrics, SchedulerKind, SimNetwork, SimTime,
    Simulator,
};
use std::sync::Arc;

/// Result of an ELink run: the clustering, the message bill, the observability
/// registry and the simulated completion time.
#[derive(Debug, Clone)]
pub struct ElinkOutcome {
    /// The extracted (validated-shape) clustering.
    pub clustering: Clustering,
    /// Message statistics (per kind and total; §8.2 cost model).
    pub costs: CostBook,
    /// Observability registry: per-level growth phase envelopes
    /// (`growth.l*`), synchronization phases (`sync.*`), hop histograms and
    /// drop counters accumulated during the run (see
    /// [`elink_netsim::metrics`]).
    pub metrics: Metrics,
    /// Simulated time at which the protocol quiesced.
    pub elapsed: SimTime,
    /// High-water mark of simultaneously live events in the scheduler —
    /// the arena footprint the scaling bench reports.
    pub peak_live_events: usize,
}

/// Extended run knobs beyond the link model: the optional ARQ sublayer and
/// the event-scheduler backend (differential testing and the scale bench
/// run the same workload under both [`SchedulerKind`]s).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// When `Some`, every protocol message rides the reliable-delivery
    /// (ack/retransmit/dedup) sublayer.
    pub arq: Option<ArqConfig>,
    /// Event-queue backend (default [`SchedulerKind::Calendar`]).
    pub scheduler: SchedulerKind,
}

/// Runs ELink in any [`SignalMode`] over an arbitrary [`LinkModel`] — the
/// general entry point behind [`run_implicit`]/[`run_explicit`]/
/// [`run_unordered`], and the one to use for lossy or crash-prone links
/// (e.g. `elink_netsim::LossyLink`). Crashed nodes freeze mid-protocol; the
/// extracted clustering reflects whatever state each node last reached.
pub fn run_with_link(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    mode: SignalMode,
    link: impl Into<Box<dyn LinkModel>>,
    seed: u64,
) -> ElinkOutcome {
    run_with_link_arq(network, features, metric, config, mode, link, seed, None)
}

/// [`run_with_link`] with an optional ARQ layer: when `arq` is `Some`, every
/// protocol message rides the engine's reliable-delivery sublayer
/// ([`elink_netsim::reliable`]) — per-link ack/retransmit/dedup — and the
/// protocol's conservative timeouts automatically stretch to the ARQ
/// worst-case envelope via [`elink_netsim::Ctx::max_delivery_delay`]. This is
/// how Explicit ELink survives lossy links with the *same* output clustering
/// as a loss-free run.
#[allow(clippy::too_many_arguments)]
pub fn run_with_link_arq(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    mode: SignalMode,
    link: impl Into<Box<dyn LinkModel>>,
    seed: u64,
    arq: Option<ArqConfig>,
) -> ElinkOutcome {
    run_with_options(
        network,
        features,
        metric,
        config,
        mode,
        link,
        seed,
        RunOptions {
            arq,
            ..RunOptions::default()
        },
    )
}

/// Constructs the ELink simulator without running it — the seam the model
/// checker uses to drive the real protocol through its own schedules. The
/// construction is shared with [`run_with_options`], so checked state and
/// production state cannot drift.
pub fn build_sim(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    mode: SignalMode,
    link: impl Into<Box<dyn LinkModel>>,
    seed: u64,
) -> Simulator<ElinkNode> {
    let topo = network.topology();
    let n = topo.n();
    assert_eq!(features.len(), n, "one feature per node");
    let quad = Arc::new(QuadInfo::build(topo));
    let nodes: Vec<ElinkNode> = (0..n)
        .map(|id| {
            ElinkNode::new(
                id,
                n,
                features[id].clone(),
                Arc::clone(&metric),
                config,
                mode,
                Arc::clone(&quad),
            )
        })
        .collect();
    Simulator::new(network.clone(), link, seed, nodes)
}

/// The fully-general runner: [`run_with_link_arq`] plus scheduler-backend
/// selection via [`RunOptions`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_options(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    mode: SignalMode,
    link: impl Into<Box<dyn LinkModel>>,
    seed: u64,
    options: RunOptions,
) -> ElinkOutcome {
    let topo = network.topology();
    let mut sim = build_sim(
        network,
        features,
        Arc::clone(&metric),
        config,
        mode,
        link,
        seed,
    );
    sim.set_scheduler(options.scheduler);
    if let Some(arq_config) = options.arq {
        sim.enable_arq(arq_config);
    }
    let elapsed = sim.run_to_completion();
    let mut metrics = sim.take_metrics();
    let states: Vec<_> = sim
        .nodes()
        .iter()
        .enumerate()
        .map(|(id, node)| node.cluster_state(id))
        .collect();
    // Host-side extraction happens "at" quiescence in simulated time: a
    // zero-width span whose entry marks the extraction ran exactly once.
    let clustering = {
        let _guard = metrics.enter_phase("host.extract", elapsed);
        Clustering::from_node_states(&states, topo, metric.as_ref())
    };
    metrics.phase_enter("run", 0);
    metrics.phase_exit("run", elapsed);
    ElinkOutcome {
        clustering,
        costs: sim.costs().clone(),
        metrics,
        elapsed,
        peak_live_events: sim.peak_live_events(),
    }
}

/// Implicit-signalling ELink (§4) — synchronous networks only: level `l`
/// sentinels start on timers at `Σ_{j<l} t_j`.
///
/// ```
/// use elink_core::{run_implicit, ElinkConfig};
/// use elink_metric::{Absolute, Feature};
/// use elink_netsim::SimNetwork;
/// use elink_topology::Topology;
/// use std::sync::Arc;
///
/// let topology = Topology::grid(1, 8);
/// // Two feature zones: west ~0, east ~50.
/// let features: Vec<Feature> = (0..8)
///     .map(|v| Feature::scalar(if v < 4 { 0.0 } else { 50.0 }))
///     .collect();
/// let network = SimNetwork::new(topology);
/// let outcome = run_implicit(&network, &features, Arc::new(Absolute),
///                            ElinkConfig::for_delta(5.0));
/// assert_eq!(outcome.clustering.cluster_count(), 2);
/// ```
pub fn run_implicit(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
) -> ElinkOutcome {
    run_with_link(
        network,
        features,
        metric,
        config,
        SignalMode::Implicit,
        DelayModel::Sync,
        0,
    )
}

/// Explicit-signalling ELink (§5) — works on synchronous *and* asynchronous
/// networks; levels are ordered by `ack`/`phase`/`start` messages.
pub fn run_explicit(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    delay: DelayModel,
    seed: u64,
) -> ElinkOutcome {
    run_with_link(
        network,
        features,
        metric,
        config,
        SignalMode::Explicit,
        delay,
        seed,
    )
}

/// The §5 ablation: every sentinel expands at time 0 ("unordered
/// expansion"), trading clustering quality for `O(√N)` completion time.
pub fn run_unordered(
    network: &SimNetwork,
    features: &[Feature],
    metric: Arc<dyn Metric>,
    config: ElinkConfig,
    delay: DelayModel,
    seed: u64,
) -> ElinkOutcome {
    run_with_link(
        network,
        features,
        metric,
        config,
        SignalMode::Unordered,
        delay,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::validate_delta_clustering;
    use elink_metric::Absolute;
    use elink_topology::Topology;

    /// 1×8 path with two obvious feature zones.
    fn two_zone() -> (SimNetwork, Vec<Feature>) {
        let topo = Topology::grid(1, 8);
        let features: Vec<Feature> = (0..8)
            .map(|v| Feature::scalar(if v < 4 { 0.0 } else { 100.0 }))
            .collect();
        (SimNetwork::new(topo), features)
    }

    #[test]
    fn implicit_clusters_two_zones() {
        let (net, features) = two_zone();
        let outcome = run_implicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(10.0),
        );
        assert_eq!(outcome.clustering.cluster_count(), 2);
        validate_delta_clustering(
            &outcome.clustering,
            net.topology(),
            &features,
            &Absolute,
            10.0,
        )
        .unwrap();
    }

    #[test]
    fn explicit_matches_implicit_on_sync_network() {
        // §8.4: "The Implicit and Explicit signalled ELink algorithms output
        // the same clusters".
        let (net, features) = two_zone();
        let config = ElinkConfig::for_delta(10.0);
        let a = run_implicit(&net, &features, Arc::new(Absolute), config);
        let b = run_explicit(
            &net,
            &features,
            Arc::new(Absolute),
            config,
            DelayModel::Sync,
            0,
        );
        assert_eq!(a.clustering.assignment, b.clustering.assignment);
        // ... but the explicit variant pays synchronization messages.
        assert!(b.costs.total_cost() > a.costs.total_cost());
    }

    #[test]
    fn single_cluster_when_delta_huge() {
        let (net, features) = two_zone();
        let outcome = run_implicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(1000.0),
        );
        assert_eq!(outcome.clustering.cluster_count(), 1);
    }

    #[test]
    fn all_singletons_when_delta_tiny() {
        let topo = Topology::grid(1, 5);
        let features: Vec<Feature> = (0..5).map(|v| Feature::scalar(v as f64 * 50.0)).collect();
        let net = SimNetwork::new(topo);
        let outcome = run_implicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(1.0),
        );
        assert_eq!(outcome.clustering.cluster_count(), 5);
    }

    #[test]
    fn explicit_works_on_async_network() {
        let (net, features) = two_zone();
        let outcome = run_explicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(10.0),
            DelayModel::Async { min: 1, max: 4 },
            7,
        );
        assert_eq!(outcome.clustering.cluster_count(), 2);
        validate_delta_clustering(
            &outcome.clustering,
            net.topology(),
            &features,
            &Absolute,
            10.0,
        )
        .unwrap();
    }

    #[test]
    fn outcome_metrics_carry_phase_envelopes() {
        let (net, features) = two_zone();
        let outcome = run_implicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(10.0),
        );
        // The whole-run phase spans [0, elapsed].
        let run = outcome.metrics.phase("run").expect("run phase recorded");
        assert_eq!(run.entries, 1);
        assert_eq!(run.span(), outcome.elapsed);
        // At least one growth level ran, and its envelope fits in the run.
        let growth: Vec<_> = outcome
            .metrics
            .phases()
            .filter(|(name, _)| name.starts_with("growth."))
            .collect();
        assert!(!growth.is_empty(), "no growth phases recorded");
        for (name, stats) in growth {
            assert!(stats.entries > 0, "{name} has no entries");
            assert!(stats.last_exit <= outcome.elapsed);
        }
        // Host-side extraction ran exactly once, at quiescence.
        let extract = outcome.metrics.phase("host.extract").unwrap();
        assert_eq!(extract.entries, 1);
        assert_eq!(extract.span(), 0);
    }

    #[test]
    fn explicit_mode_records_sync_phases() {
        let (net, features) = two_zone();
        let outcome = run_explicit(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(10.0),
            DelayModel::Sync,
            0,
        );
        // Implicit mode has no synchronization messages; explicit mode must
        // record both the ack wave and the quadtree wave.
        assert!(outcome.metrics.phase("sync.acks").is_some());
        assert!(outcome.metrics.phase("sync.quadtree").is_some());
    }

    #[test]
    fn unordered_completes_and_validates() {
        let (net, features) = two_zone();
        let outcome = run_unordered(
            &net,
            &features,
            Arc::new(Absolute),
            ElinkConfig::for_delta(10.0),
            DelayModel::Sync,
            0,
        );
        validate_delta_clustering(
            &outcome.clustering,
            net.topology(),
            &features,
            &Absolute,
            10.0,
        )
        .unwrap();
    }
}
