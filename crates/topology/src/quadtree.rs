//! Recursive quadtree decomposition with cell-leader election (§3.2).
//!
//! ELink schedules cluster growth from *sentinel sets* `S_0 … S_α`: sentinel
//! set `S_l` consists of the leaders of all quadtree cells at level `l`,
//! where a cell's leader is the node nearest the cell centroid (footnote 1 —
//! for routing purposes). Cells subdivide until they contain at most one
//! node; empty cells are pruned. Every node therefore leads some cell and
//! appears in exactly one sentinel set at its *shallowest* leading level,
//! matching the paper's accounting `Σ_l |S_l| = N`.

use crate::point::Rect;
use crate::topo::{NodeId, Topology};

/// Index of a quadtree cell.
pub type CellId = usize;

/// Hard cap on subdivision depth; only reachable with (near-)duplicate node
/// positions, in which case the deepest cell keeps multiple nodes and only
/// its leader is a sentinel.
const MAX_DEPTH: usize = 40;

/// One quadtree cell.
#[derive(Debug, Clone)]
pub struct QuadCell {
    /// Level in the quadtree (root = 0).
    pub level: usize,
    /// Spatial bounds.
    pub bounds: Rect,
    /// Parent cell (`None` for the root).
    pub parent: Option<CellId>,
    /// Non-empty child cells (up to 4).
    pub children: Vec<CellId>,
    /// The elected leader: node nearest the cell centroid.
    pub leader: NodeId,
    /// All nodes contained in the cell.
    pub nodes: Vec<NodeId>,
}

/// The full quadtree decomposition of a topology.
#[derive(Debug, Clone)]
pub struct QuadTree {
    cells: Vec<QuadCell>,
    root: CellId,
    levels: Vec<Vec<CellId>>,
    /// Per node: the shallowest level at which it leads a cell, or
    /// `usize::MAX` if it leads none (only possible with duplicate
    /// positions).
    sentinel_level: Vec<usize>,
}

impl QuadTree {
    /// Builds the quadtree for a topology.
    pub fn build(topology: &Topology) -> QuadTree {
        let all_nodes: Vec<NodeId> = (0..topology.n()).collect();
        let mut tree = QuadTree {
            cells: Vec::new(),
            root: 0,
            levels: Vec::new(),
            sentinel_level: vec![usize::MAX; topology.n()],
        };
        tree.root = tree.subdivide(topology, topology.extent(), all_nodes, 0, None);
        for (id, cell) in tree.cells.iter().enumerate() {
            while tree.levels.len() <= cell.level {
                tree.levels.push(Vec::new());
            }
            tree.levels[cell.level].push(id);
        }
        for cell in &tree.cells {
            let lvl = &mut tree.sentinel_level[cell.leader];
            *lvl = (*lvl).min(cell.level);
        }
        tree
    }

    fn subdivide(
        &mut self,
        topology: &Topology,
        bounds: Rect,
        nodes: Vec<NodeId>,
        level: usize,
        parent: Option<CellId>,
    ) -> CellId {
        debug_assert!(!nodes.is_empty(), "subdivide called with empty cell");
        let leader = topology
            .nearest_node_among(&bounds.center(), &nodes)
            .expect("non-empty cell has a leader");
        let id = self.cells.len();
        self.cells.push(QuadCell {
            level,
            bounds,
            parent,
            children: Vec::new(),
            leader,
            nodes: nodes.clone(),
        });
        if nodes.len() > 1 && level < MAX_DEPTH {
            let mut children = Vec::new();
            for quadrant in bounds.quadrants() {
                let members: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&v| quadrant.contains(&topology.position(v)))
                    .collect();
                if !members.is_empty() {
                    let child = self.subdivide(topology, quadrant, members, level + 1, Some(id));
                    children.push(child);
                }
            }
            self.cells[id].children = children;
        }
        id
    }

    /// The root cell id.
    pub fn root(&self) -> CellId {
        self.root
    }

    /// A cell by id.
    pub fn cell(&self, id: CellId) -> &QuadCell {
        &self.cells[id]
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The depth α (deepest level).
    pub fn depth(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Cell ids at a level (empty slice above the depth).
    pub fn cells_at_level(&self, level: usize) -> &[CellId] {
        self.levels.get(level).map_or(&[], Vec::as_slice)
    }

    /// Sentinel set `S_l`: the distinct leaders of cells at level `l`.
    pub fn sentinels_at_level(&self, level: usize) -> Vec<NodeId> {
        let mut leaders: Vec<NodeId> = self
            .cells_at_level(level)
            .iter()
            .map(|&c| self.cells[c].leader)
            .collect();
        leaders.sort_unstable();
        leaders.dedup();
        leaders
    }

    /// The shallowest level at which `node` leads a cell (its scheduling
    /// level for implicit signalling); `None` only with duplicate positions.
    pub fn sentinel_level(&self, node: NodeId) -> Option<usize> {
        let l = self.sentinel_level[node];
        (l != usize::MAX).then_some(l)
    }

    /// All cells led by `node`.
    pub fn cells_led_by(&self, node: NodeId) -> Vec<CellId> {
        (0..self.cells.len())
            .filter(|&c| self.cells[c].leader == node)
            .collect()
    }

    /// Iterates over all cells with their ids.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellId, &QuadCell)> {
        self.cells.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_everything() {
        let t = Topology::grid(4, 4);
        let qt = QuadTree::build(&t);
        let root = qt.cell(qt.root());
        assert_eq!(root.level, 0);
        assert_eq!(root.nodes.len(), 16);
        assert!(root.parent.is_none());
    }

    #[test]
    fn leaves_are_singletons() {
        let t = Topology::grid(4, 4);
        let qt = QuadTree::build(&t);
        for (_, cell) in qt.iter_cells() {
            if cell.children.is_empty() {
                assert_eq!(cell.nodes.len(), 1);
                assert_eq!(cell.leader, cell.nodes[0]);
            }
        }
    }

    #[test]
    fn every_node_is_a_sentinel_somewhere() {
        for topo in [Topology::grid(6, 9), Topology::random_synthetic(80, 5)] {
            let qt = QuadTree::build(&topo);
            for v in 0..topo.n() {
                assert!(
                    qt.sentinel_level(v).is_some(),
                    "node {v} never leads a cell"
                );
            }
            // Sentinel sets keyed by shallowest level partition all nodes.
            let total: usize = (0..topo.n())
                .map(|v| qt.sentinel_level(v).unwrap())
                .map(|_| 1)
                .sum();
            assert_eq!(total, topo.n());
        }
    }

    #[test]
    fn levels_partition_cells_spatially() {
        let t = Topology::grid(8, 8);
        let qt = QuadTree::build(&t);
        // Within a level, no node can appear in two cells.
        for l in 0..=qt.depth() {
            let mut seen = vec![false; t.n()];
            for &c in qt.cells_at_level(l) {
                for &v in &qt.cell(c).nodes {
                    assert!(!seen[v], "node {v} in two level-{l} cells");
                    seen[v] = true;
                }
            }
        }
    }

    #[test]
    fn children_are_subsets_of_parent() {
        let t = Topology::random_synthetic(60, 9);
        let qt = QuadTree::build(&t);
        for (_, cell) in qt.iter_cells() {
            let child_total: usize = cell.children.iter().map(|&c| qt.cell(c).nodes.len()).sum();
            if !cell.children.is_empty() {
                assert_eq!(child_total, cell.nodes.len());
                for &c in &cell.children {
                    let child = qt.cell(c);
                    assert_eq!(child.level, cell.level + 1);
                    for &v in &child.nodes {
                        assert!(cell.nodes.contains(&v));
                    }
                }
            }
        }
    }

    #[test]
    fn s0_has_single_sentinel() {
        let t = Topology::grid(6, 9);
        let qt = QuadTree::build(&t);
        assert_eq!(qt.sentinels_at_level(0).len(), 1);
    }

    #[test]
    fn depth_is_logarithmic_for_grid() {
        // For an n×n grid the quadtree depth is about log2(n) + O(1)
        // (levels halve the cell side until singleton cells).
        let t = Topology::grid(16, 16);
        let qt = QuadTree::build(&t);
        assert!(qt.depth() <= 6, "depth {} too large", qt.depth());
        assert!(qt.depth() >= 4, "depth {} too small", qt.depth());
    }

    #[test]
    fn leader_is_nearest_to_centroid() {
        let t = Topology::grid(4, 4);
        let qt = QuadTree::build(&t);
        for (_, cell) in qt.iter_cells() {
            let c = cell.bounds.center();
            let best = t.nearest_node_among(&c, &cell.nodes).unwrap();
            assert_eq!(cell.leader, best);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn quadtree_invariants_on_random_topologies(n in 2usize..120, seed in 0u64..1000) {
            let topo = Topology::random_synthetic(n, seed);
            let qt = QuadTree::build(&topo);
            // 1. Every node leads some cell.
            for v in 0..n {
                prop_assert!(qt.sentinel_level(v).is_some());
            }
            // 2. Root covers all nodes.
            prop_assert_eq!(qt.cell(qt.root()).nodes.len(), n);
            // 3. Parent pointers are consistent.
            for (id, cell) in qt.iter_cells() {
                for &ch in &cell.children {
                    prop_assert_eq!(qt.cell(ch).parent, Some(id));
                }
            }
            // 4. Leaders belong to their own cells.
            for (_, cell) in qt.iter_cells() {
                prop_assert!(cell.nodes.contains(&cell.leader));
            }
        }
    }
}
