//! Sensor-network topologies for the ELink reproduction.
//!
//! Provides node placement (grid / random-uniform), the communication graph
//! (explicit edges for grids, unit-disk for random placements), hop-count
//! routing over the graph, and the recursive quadtree decomposition with
//! cell-leader election that defines ELink's sentinel sets (§3.2).

// Every public item must carry a doc comment (simlint pub-doc-coverage
// enforces the same invariant pre-rustdoc).
#![warn(missing_docs)]

pub mod georoute;
/// Adjacency-list communication graph and BFS routing.
pub mod graph;
/// 2-D points and distance helpers.
pub mod point;
/// Recursive spatial quadtree decomposition (§4.1).
pub mod quadtree;
/// Topology constructors: grids, random disks, synthetic deployments.
pub mod topo;

pub use georoute::{greedy_route, measure_stretch, GreedyRoute, StretchStats};
pub use graph::{CommGraph, RoutingTable};
pub use point::{Point, Rect};
pub use quadtree::{CellId, QuadCell, QuadTree};
pub use topo::{NodeId, Topology};
