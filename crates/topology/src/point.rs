//! 2-D geometry primitives: points and axis-aligned rectangles.

/// A point in the deployment plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in comparisons).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// An axis-aligned rectangle `[min_x, max_x) × [min_y, max_y)`.
///
/// Half-open on the high edges so that quadtree subdivision partitions a cell
/// exactly (every point belongs to exactly one child).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Inclusive low x bound.
    pub min_x: f64,
    /// Inclusive low y bound.
    pub min_y: f64,
    /// Exclusive high x bound.
    pub max_x: f64,
    /// Exclusive high y bound.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    /// Panics if the rectangle is inverted.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(min_x <= max_x && min_y <= max_y, "inverted rectangle");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The rectangle's center.
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min_x + self.max_x),
            0.5 * (self.min_y + self.max_y),
        )
    }

    /// Whether the point lies inside (half-open semantics).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x < self.max_x && p.y >= self.min_y && p.y < self.max_y
    }

    /// Splits into four equal quadrants, ordered SW, SE, NW, NE.
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min_x, self.min_y, c.x, c.y),
            Rect::new(c.x, self.min_y, self.max_x, c.y),
            Rect::new(self.min_x, c.y, c.x, self.max_y),
            Rect::new(c.x, c.y, self.max_x, self.max_y),
        ]
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn rect_center_and_contains() {
        let r = Rect::new(0.0, 0.0, 2.0, 4.0);
        assert_eq!(r.center(), Point::new(1.0, 2.0));
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.999, 3.999)));
        assert!(!r.contains(&Point::new(2.0, 0.0)), "high edge is exclusive");
    }

    #[test]
    fn quadrants_partition() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let qs = r.quadrants();
        // Every probe point falls in exactly one quadrant.
        for p in [
            Point::new(0.5, 0.5),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(3.9, 3.9),
            Point::new(2.0, 2.0),
        ] {
            let hits = qs.iter().filter(|q| q.contains(&p)).count();
            assert_eq!(hits, 1, "point {p:?} in {hits} quadrants");
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn width_height() {
        let r = Rect::new(1.0, 2.0, 4.0, 7.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 5.0);
    }
}
