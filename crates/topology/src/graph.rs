//! Communication graph and hop-count routing.
//!
//! ELink's message-cost accounting (§8.2) charges one unit per hop, and the
//! quadtree signalling, backbone construction and centralized baselines all
//! route multi-hop over the communication graph. [`RoutingTable`] provides
//! shortest-path (BFS) next-hop routing from every node.

use std::collections::VecDeque;

/// Undirected communication graph over `n` nodes, stored as adjacency lists.
#[derive(Debug, Clone)]
pub struct CommGraph {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl CommGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        CommGraph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an undirected edge. Duplicate and self edges are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n() && b < self.n(), "edge endpoint out of range");
        if a == b || self.adj[a].contains(&(b as u32)) {
            return;
        }
        self.adj[a].push(b as u32);
        self.adj[b].push(a as u32);
        self.edge_count += 1;
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all nodes (the paper's constant `d`).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&(b as u32))
    }

    /// BFS hop distances from `src`; unreachable nodes get `u32::MAX`.
    pub fn bfs_hops(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src as u32);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            for &w in &self.adj[v as usize] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// BFS parents from `root` (a shortest-path spanning tree); `parent[root]
    /// == root`, unreachable nodes get `u32::MAX`.
    pub fn bfs_tree(&self, root: usize) -> Vec<u32> {
        let mut parent = vec![u32::MAX; self.n()];
        let mut queue = VecDeque::new();
        parent[root] = root as u32;
        queue.push_back(root as u32);
        while let Some(v) = queue.pop_front() {
            // Deterministic order: adjacency lists are built deterministically.
            for &w in &self.adj[v as usize] {
                if parent[w as usize] == u32::MAX {
                    parent[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
        parent
    }

    /// Whether the graph is connected (trivially true for n ≤ 1).
    pub fn is_connected(&self) -> bool {
        if self.n() <= 1 {
            return true;
        }
        self.bfs_hops(0).iter().all(|&d| d != u32::MAX)
    }

    /// Connected components as lists of node ids.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n()];
        let mut comps = Vec::new();
        for start in 0..self.n() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::new();
            seen[start] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &w in &self.adj[v] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w as usize);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// Connected components restricted to an induced subset of nodes.
    /// Used to check δ-cluster connectivity (Definition 1, condition 1).
    pub fn induced_components(&self, members: &[usize]) -> Vec<Vec<usize>> {
        let mut in_set = vec![false; self.n()];
        for &m in members {
            in_set[m] = true;
        }
        let mut seen = vec![false; self.n()];
        let mut comps = Vec::new();
        for &start in members {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::new();
            seen[start] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &w in &self.adj[v] {
                    let w = w as usize;
                    if in_set[w] && !seen[w] {
                        seen[w] = true;
                        queue.push_back(w);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }
}

/// All-pairs shortest-path next-hop routing, built with one BFS per node.
///
/// `next_hop(src, dst)` gives the neighbor of `src` on a shortest path to
/// `dst`; `hops(src, dst)` gives the path length. Storage is `O(n²)` which is
/// fine for the ≤ 4096-node networks in the experiments.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// Flattened `n × n`: entry `dst * n + v` is the parent of `v` in the
    /// BFS tree rooted at `dst` (i.e. the next hop from `v` towards `dst`).
    parent_towards: Vec<u32>,
    /// Flattened `n × n` hop counts.
    hops: Vec<u32>,
}

impl RoutingTable {
    /// Builds the routing table for a graph.
    pub fn build(graph: &CommGraph) -> Self {
        let n = graph.n();
        let mut parent_towards = vec![u32::MAX; n * n];
        let mut hops = vec![u32::MAX; n * n];
        for dst in 0..n {
            let tree = graph.bfs_tree(dst);
            let dist = graph.bfs_hops(dst);
            parent_towards[dst * n..(dst + 1) * n].copy_from_slice(&tree);
            hops[dst * n..(dst + 1) * n].copy_from_slice(&dist);
        }
        RoutingTable {
            n,
            parent_towards,
            hops,
        }
    }

    /// Next hop from `src` towards `dst`. `None` if `src == dst` or
    /// unreachable.
    pub fn next_hop(&self, src: usize, dst: usize) -> Option<usize> {
        if src == dst {
            return None;
        }
        let p = self.parent_towards[dst * self.n + src];
        if p == u32::MAX {
            None
        } else {
            Some(p as usize)
        }
    }

    /// Hop count from `src` to `dst`; `None` if unreachable.
    pub fn hops(&self, src: usize, dst: usize) -> Option<u32> {
        let h = self.hops[dst * self.n + src];
        if h == u32::MAX {
            None
        } else {
            Some(h)
        }
    }

    /// The full node sequence of a shortest path (inclusive of endpoints).
    pub fn path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            if path.len() > self.n {
                return None; // corrupted table; defensive
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    fn path4() -> CommGraph {
        let mut g = CommGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn add_edge_ignores_dups_and_self_loops() {
        let mut g = CommGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn bfs_hops_path_graph() {
        let g = path4();
        assert_eq!(g.bfs_hops(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs_hops(2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_is_max() {
        let mut g = CommGraph::new(3);
        g.add_edge(0, 1);
        assert_eq!(g.bfs_hops(0)[2], u32::MAX);
        assert!(!g.is_connected());
    }

    #[test]
    fn components_found() {
        let mut g = CommGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert_eq!(comps[2], vec![4]);
    }

    #[test]
    fn induced_components_respect_subset() {
        let g = path4();
        // {0, 1, 3}: removing node 2 disconnects 3.
        let comps = g.induced_components(&[0, 1, 3]);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn routing_table_next_hops() {
        let g = path4();
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.next_hop(0, 3), Some(1));
        assert_eq!(rt.next_hop(3, 0), Some(2));
        assert_eq!(rt.next_hop(2, 2), None);
        assert_eq!(rt.hops(0, 3), Some(3));
        assert_eq!(rt.hops(1, 1), Some(0));
    }

    #[test]
    fn routing_path_reconstruction() {
        let g = path4();
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.path(0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(rt.path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn routing_handles_disconnection() {
        let mut g = CommGraph::new(3);
        g.add_edge(0, 1);
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.next_hop(0, 2), None);
        assert_eq!(rt.hops(0, 2), None);
        assert_eq!(rt.path(0, 2), None);
    }

    #[test]
    fn max_degree() {
        let mut g = CommGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert_eq!(g.max_degree(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn random_connected_graph() -> impl Strategy<Value = CommGraph> {
        (
            2usize..30,
            proptest::collection::vec((0usize..1000, 0usize..1000), 0..60),
        )
            .prop_map(|(n, extra)| {
                let mut g = CommGraph::new(n);
                // Spanning path guarantees connectivity.
                for i in 1..n {
                    g.add_edge(i - 1, i);
                }
                for (a, b) in extra {
                    g.add_edge(a % n, b % n);
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bfs_distances_satisfy_edge_relaxation(g in random_connected_graph()) {
            let d = g.bfs_hops(0);
            for v in 0..g.n() {
                for &w in g.neighbors(v) {
                    // Neighbor distances differ by at most 1.
                    let dv = d[v] as i64;
                    let dw = d[w as usize] as i64;
                    prop_assert!((dv - dw).abs() <= 1);
                }
            }
        }

        #[test]
        fn routing_paths_have_reported_length(g in random_connected_graph()) {
            let rt = RoutingTable::build(&g);
            let n = g.n();
            for src in 0..n.min(5) {
                for dst in 0..n {
                    let path = rt.path(src, dst).unwrap();
                    prop_assert_eq!(path.len() as u32 - 1, rt.hops(src, dst).unwrap());
                    // Consecutive path nodes must be graph edges.
                    for pair in path.windows(2) {
                        prop_assert!(g.has_edge(pair[0], pair[1]));
                    }
                }
            }
        }
    }
}
