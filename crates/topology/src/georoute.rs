//! Greedy geographic routing (GPSR-style, \[16\]) and path-stretch
//! measurement.
//!
//! The paper's implicit schedule multiplies κ by a *stretch factor*
//! `(1 + γ)` to account for routes being longer than straight lines
//! ("Constant γ is usually small, around 0.2–0.4", §4, citing \[18\]). This
//! module provides the greedy-forwarding primitive those systems use —
//! each hop moves to the neighbor geographically closest to the
//! destination — plus utilities to measure the realized stretch on a
//! topology, so the γ assumption can be validated empirically
//! (`ext_stretch` in the experiments crate).
//!
//! Greedy forwarding alone can strand in a local minimum (a void); full
//! GPSR recovers with perimeter routing over a planarized graph. Here a
//! stranded packet falls back to shortest-path (BFS) routing for the
//! remainder — the fallback is flagged in the result so stretch statistics
//! can separate the two regimes.

use crate::graph::RoutingTable;
use crate::topo::{NodeId, Topology};

/// Result of one greedy-forwarding walk.
#[derive(Debug, Clone)]
pub struct GreedyRoute {
    /// The node sequence, source first. Ends at the destination.
    pub path: Vec<NodeId>,
    /// Whether greedy forwarding got stuck in a void and the BFS fallback
    /// completed the route.
    pub used_fallback: bool,
}

impl GreedyRoute {
    /// Hop count of the route.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Routes greedily from `src` to `dst`: each hop forwards to the neighbor
/// strictly closest (in Euclidean position) to the destination. On a local
/// minimum, the rest of the route follows shortest paths via `fallback`.
///
/// Returns `None` only if the fallback cannot reach `dst` (disconnected
/// network).
pub fn greedy_route(
    topology: &Topology,
    fallback: &RoutingTable,
    src: NodeId,
    dst: NodeId,
) -> Option<GreedyRoute> {
    let mut path = vec![src];
    let mut cur = src;
    let mut used_fallback = false;
    let dst_pos = topology.position(dst);
    while cur != dst {
        let cur_d = topology.position(cur).dist_sq(&dst_pos);
        let next = topology
            .graph()
            .neighbors(cur)
            .iter()
            .map(|&w| w as usize)
            .map(|w| (w, topology.position(w).dist_sq(&dst_pos)))
            .filter(|&(_, d)| d < cur_d)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        match next {
            Some((w, _)) => {
                path.push(w);
                cur = w;
            }
            None => {
                // Void: complete with shortest-path forwarding.
                used_fallback = true;
                let rest = fallback.path(cur, dst)?;
                path.extend(rest.into_iter().skip(1));
                cur = dst;
            }
        }
        if path.len() > 4 * topology.n() {
            return None; // defensive: should be unreachable
        }
    }
    Some(GreedyRoute {
        path,
        used_fallback,
    })
}

/// Aggregate stretch statistics over sampled node pairs.
#[derive(Debug, Clone)]
pub struct StretchStats {
    /// Mean of `greedy_hops / shortest_hops − 1` over sampled pairs — the
    /// γ of §4.
    pub mean_stretch: f64,
    /// Worst observed stretch.
    pub max_stretch: f64,
    /// Fraction of routes that needed the void fallback.
    pub fallback_rate: f64,
    /// Pairs sampled.
    pub pairs: usize,
}

/// Measures greedy-routing stretch over a deterministic sample of node
/// pairs (up to `max_pairs`, spread over the id space).
pub fn measure_stretch(
    topology: &Topology,
    routing: &RoutingTable,
    max_pairs: usize,
) -> StretchStats {
    let n = topology.n();
    let mut sum = 0.0;
    let mut max = 0.0_f64;
    let mut fallbacks = 0usize;
    let mut pairs = 0usize;
    let mut k = 0usize;
    while pairs < max_pairs && k < 4 * max_pairs {
        let src = (k * 7919) % n;
        let dst = (k * 104729 + n / 2) % n;
        k += 1;
        if src == dst {
            continue;
        }
        let Some(short) = routing.hops(src, dst) else {
            continue;
        };
        if short == 0 {
            continue;
        }
        let Some(route) = greedy_route(topology, routing, src, dst) else {
            continue;
        };
        let stretch = route.hops() as f64 / short as f64 - 1.0;
        sum += stretch;
        max = max.max(stretch);
        if route.used_fallback {
            fallbacks += 1;
        }
        pairs += 1;
    }
    StretchStats {
        mean_stretch: if pairs > 0 { sum / pairs as f64 } else { 0.0 },
        max_stretch: max,
        fallback_rate: if pairs > 0 {
            fallbacks as f64 / pairs as f64
        } else {
            0.0
        },
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_on_grid_is_shortest() {
        // On a grid, greedy forwarding follows Manhattan shortest paths.
        let topo = Topology::grid(5, 5);
        let rt = RoutingTable::build(topo.graph());
        let route = greedy_route(&topo, &rt, 0, 24).unwrap();
        assert_eq!(route.hops() as u32, rt.hops(0, 24).unwrap());
        assert!(!route.used_fallback);
    }

    #[test]
    fn route_endpoints_and_edges_are_valid() {
        let topo = Topology::random_synthetic(120, 4);
        let rt = RoutingTable::build(topo.graph());
        let route = greedy_route(&topo, &rt, 3, 77).unwrap();
        assert_eq!(*route.path.first().unwrap(), 3);
        assert_eq!(*route.path.last().unwrap(), 77);
        for pair in route.path.windows(2) {
            assert!(topo.graph().has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let topo = Topology::grid(3, 3);
        let rt = RoutingTable::build(topo.graph());
        let route = greedy_route(&topo, &rt, 4, 4).unwrap();
        assert_eq!(route.path, vec![4]);
        assert_eq!(route.hops(), 0);
    }

    #[test]
    fn stretch_on_random_topologies_matches_paper_band() {
        // §4: "Constant γ is usually small, around 0.2–0.4." Random
        // unit-disk networks should land at or below that band.
        let topo = Topology::random_synthetic(300, 7);
        let rt = RoutingTable::build(topo.graph());
        let stats = measure_stretch(&topo, &rt, 100);
        assert!(stats.pairs >= 50, "too few sampled pairs: {}", stats.pairs);
        assert!(
            stats.mean_stretch < 0.5,
            "mean stretch {} above the paper's band",
            stats.mean_stretch
        );
    }

    #[test]
    fn stretch_is_nonnegative() {
        let topo = Topology::random_synthetic(100, 9);
        let rt = RoutingTable::build(topo.graph());
        let stats = measure_stretch(&topo, &rt, 60);
        assert!(stats.mean_stretch >= 0.0);
        assert!(stats.max_stretch >= stats.mean_stretch);
        assert!((0.0..=1.0).contains(&stats.fallback_rate));
    }
}
