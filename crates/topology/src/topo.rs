//! Node placement and topology construction.
//!
//! Two families from §8.1: regular grids (the Tao buoy array is a 6×9 grid
//! whose communication graph is the grid itself) and random-uniform
//! placements with a unit-disk radio (the synthetic experiments use N ∈
//! [100, 800] with ≈ 4 neighbors within radio range on average).

use crate::graph::CommGraph;
use crate::point::{Point, Rect};
use rand::Rng;
use rand::SeedableRng;

/// Index of a sensor node. Nodes are densely numbered `0..n`.
pub type NodeId = usize;

/// A deployed sensor network: node positions, their communication graph, and
/// the bounding rectangle of the deployment.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point>,
    graph: CommGraph,
    extent: Rect,
}

impl Topology {
    /// Builds a topology from explicit positions and graph.
    ///
    /// # Panics
    /// Panics if `positions.len() != graph.n()`.
    pub fn from_parts(positions: Vec<Point>, graph: CommGraph, extent: Rect) -> Self {
        assert_eq!(positions.len(), graph.n(), "positions/graph size mismatch");
        Topology {
            positions,
            graph,
            extent,
        }
    }

    /// A `rows × cols` grid with unit spacing and 4-neighborhood
    /// communication edges (the Tao layout is `grid(6, 9)`).
    ///
    /// ```
    /// let grid = elink_topology::Topology::grid(6, 9);
    /// assert_eq!(grid.n(), 54);
    /// assert!(grid.graph().is_connected());
    /// assert_eq!(grid.graph().degree(0), 2); // corner
    /// ```
    pub fn grid(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let mut positions = Vec::with_capacity(n);
        let mut graph = CommGraph::new(n);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Point::new(c as f64, r as f64));
            }
        }
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    graph.add_edge(id(r, c), id(r, c + 1));
                }
                if r + 1 < rows {
                    graph.add_edge(id(r, c), id(r + 1, c));
                }
            }
        }
        // Extent is padded by half a spacing so every node is interior.
        let extent = Rect::new(
            -0.5,
            -0.5,
            cols as f64 - 0.5 + 1e-9,
            rows as f64 - 0.5 + 1e-9,
        );
        Topology {
            positions,
            graph,
            extent,
        }
    }

    /// Random uniform placement of `n` nodes in an `L × L` square with a
    /// unit-disk radio of range `radio_range`; retries with a slightly larger
    /// range until the network is connected (the paper assumes connected
    /// networks).
    ///
    /// With `L = √(n/density)` and `radio_range` chosen for ~4 expected
    /// in-range neighbors, this matches the §8.1 synthetic setup; use
    /// [`Topology::random_synthetic`] for that preset.
    pub fn random_uniform(n: usize, side: f64, mut radio_range: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one node");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        // Grow the radio range geometrically until connected. Placement is
        // kept fixed so the seed fully determines positions.
        loop {
            let graph = unit_disk_graph(&positions, radio_range);
            if graph.is_connected() {
                let extent = Rect::new(0.0, 0.0, side + 1e-9, side + 1e-9);
                return Topology {
                    positions,
                    graph,
                    extent,
                };
            }
            radio_range *= 1.25;
            assert!(
                radio_range < side * 4.0,
                "failed to obtain a connected random topology"
            );
        }
    }

    /// The paper's synthetic preset (§8.1): density ≈ 0.8 nodes per unit
    /// area, radio range sized for ~4 expected neighbors.
    pub fn random_synthetic(n: usize, seed: u64) -> Self {
        let density = 0.8;
        let side = (n as f64 / density).sqrt();
        // E[neighbors] = density * π r² = 4  =>  r = √(4 / (π * density)).
        let r = (4.0 / (std::f64::consts::PI * density)).sqrt();
        Topology::random_uniform(n, side, r, seed)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.positions.len()
    }

    /// Node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Position of one node.
    pub fn position(&self, v: NodeId) -> Point {
        self.positions[v]
    }

    /// The communication graph.
    pub fn graph(&self) -> &CommGraph {
        &self.graph
    }

    /// Deployment bounding rectangle.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// The node closest to a point (ties broken by lower id). Used for
    /// cell-leader election (§3.2 footnote 1) and base-station placement.
    pub fn nearest_node(&self, p: &Point) -> NodeId {
        self.nearest_node_among(p, (0..self.n()).collect::<Vec<_>>().as_slice())
            .expect("topology has at least one node")
    }

    /// The node closest to `p` among `candidates`; `None` if empty.
    pub fn nearest_node_among(&self, p: &Point, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .map(|v| (v, self.positions[v].dist_sq(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|(v, _)| v)
    }

    /// Average node degree of the communication graph.
    pub fn average_degree(&self) -> f64 {
        2.0 * self.graph.edge_count() as f64 / self.n() as f64
    }
}

/// Builds the unit-disk communication graph for a placement.
fn unit_disk_graph(positions: &[Point], radio_range: f64) -> CommGraph {
    let n = positions.len();
    let mut graph = CommGraph::new(n);
    let r2 = radio_range * radio_range;
    for i in 0..n {
        for j in (i + 1)..n {
            if positions[i].dist_sq(&positions[j]) <= r2 {
                graph.add_edge(i, j);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let t = Topology::grid(6, 9);
        assert_eq!(t.n(), 54);
        // Interior nodes have 4 neighbors, corners 2.
        assert_eq!(t.graph().degree(0), 2);
        let interior = 9 + 1;
        assert_eq!(t.graph().degree(interior), 4);
        assert!(t.graph().is_connected());
        // Grid edge count: r*(c-1) + c*(r-1).
        assert_eq!(t.graph().edge_count(), 6 * 8 + 9 * 5);
    }

    #[test]
    fn grid_positions_are_lattice() {
        let t = Topology::grid(2, 3);
        assert_eq!(t.position(0), Point::new(0.0, 0.0));
        assert_eq!(t.position(5), Point::new(2.0, 1.0));
    }

    #[test]
    fn random_topology_is_connected_and_deterministic() {
        let a = Topology::random_synthetic(100, 7);
        let b = Topology::random_synthetic(100, 7);
        assert!(a.graph().is_connected());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn random_topology_seeds_differ() {
        let a = Topology::random_synthetic(50, 1);
        let b = Topology::random_synthetic(50, 2);
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn synthetic_average_degree_near_four() {
        // The preset aims for ~4 expected neighbors; allow generous slack
        // because connectivity enforcement may inflate the range for small n.
        let t = Topology::random_synthetic(400, 3);
        let avg = t.average_degree();
        assert!(avg > 2.0 && avg < 10.0, "average degree {avg}");
    }

    #[test]
    fn nearest_node_prefers_low_id_on_tie() {
        let t = Topology::grid(1, 3);
        // Midpoint between nodes 0 and 1.
        let p = Point::new(0.5, 0.0);
        assert_eq!(t.nearest_node(&p), 0);
    }

    #[test]
    fn nearest_among_subset() {
        let t = Topology::grid(1, 5);
        let p = Point::new(0.0, 0.0);
        assert_eq!(t.nearest_node_among(&p, &[3, 4]), Some(3));
        assert_eq!(t.nearest_node_among(&p, &[]), None);
    }

    #[test]
    fn extent_contains_all_nodes() {
        let t = Topology::random_synthetic(60, 11);
        for p in t.positions() {
            assert!(t.extent().contains(p));
        }
        let g = Topology::grid(4, 4);
        for p in g.positions() {
            assert!(g.extent().contains(p));
        }
    }
}
