//! Symmetric pairwise-distance matrices.
//!
//! Used for centralized baselines (the spectral algorithm needs all pairwise
//! distances along communication edges) and for validating δ-compactness of
//! clusterings in tests and experiments.

use crate::{Feature, Metric};

/// A symmetric `n × n` distance matrix stored as a packed upper triangle
/// (diagonal excluded — it is always zero for a metric).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Packed upper triangle, row-major: entry (i, j) with i < j lives at
    /// `i*n - i*(i+1)/2 + (j - i - 1)`.
    packed: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates an all-zero distance matrix for `n` points.
    pub fn zeros(n: usize) -> Self {
        let len = n * n.saturating_sub(1) / 2;
        DistanceMatrix {
            n,
            packed: vec![0.0; len],
        }
    }

    /// Computes all pairwise distances between `features` under `metric`.
    pub fn from_features(features: &[Feature], metric: &dyn Metric) -> Self {
        let n = features.len();
        let mut m = DistanceMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, metric.distance(&features[i], &features[j]));
            }
        }
        m
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        use std::cmp::Ordering;
        match i.cmp(&j) {
            Ordering::Equal => 0.0,
            Ordering::Less => self.packed[self.idx(i, j)],
            Ordering::Greater => self.packed[self.idx(j, i)],
        }
    }

    /// Sets the symmetric entry `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i == j` (the diagonal is fixed at zero) or out of range.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "cannot set the diagonal of a distance matrix");
        assert!(i < self.n && j < self.n, "index out of range");
        let idx = if i < j {
            self.idx(i, j)
        } else {
            self.idx(j, i)
        };
        self.packed[idx] = value;
    }

    /// Maximum pairwise distance within a set of point indices (the set's
    /// *diameter* in feature space). Returns 0.0 for sets of size < 2.
    pub fn diameter_of(&self, members: &[usize]) -> f64 {
        let mut max = 0.0_f64;
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                max = max.max(self.get(i, j));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Euclidean;

    #[test]
    fn symmetric_get_set() {
        let mut m = DistanceMatrix::zeros(4);
        m.set(1, 3, 7.5);
        assert_eq!(m.get(1, 3), 7.5);
        assert_eq!(m.get(3, 1), 7.5);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_diagonal_panics() {
        DistanceMatrix::zeros(3).set(1, 1, 1.0);
    }

    #[test]
    fn from_features_computes_all_pairs() {
        let feats = vec![
            Feature::new(vec![0.0, 0.0]),
            Feature::new(vec![3.0, 4.0]),
            Feature::new(vec![0.0, 1.0]),
        ];
        let m = DistanceMatrix::from_features(&feats, &Euclidean);
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 2) - 1.0).abs() < 1e-12);
        assert!((m.get(1, 2) - (9.0f64 + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn diameter() {
        let mut m = DistanceMatrix::zeros(4);
        m.set(0, 1, 1.0);
        m.set(0, 2, 5.0);
        m.set(1, 2, 3.0);
        m.set(2, 3, 10.0);
        assert_eq!(m.diameter_of(&[0, 1, 2]), 5.0);
        assert_eq!(m.diameter_of(&[0]), 0.0);
        assert_eq!(m.diameter_of(&[]), 0.0);
    }

    #[test]
    fn paper_fig3_distances() {
        // Distance matrix from Fig 3b: nodes a..e with δ = 5; c–e = 6 > 5.
        let names = ["a", "b", "c", "d", "e"];
        let mut m = DistanceMatrix::zeros(5);
        // A plausible completion of Fig 3b with c-e = 6 and c-d = 6.
        m.set(2, 4, 6.0);
        m.set(2, 3, 6.0);
        m.set(0, 1, 2.0);
        assert_eq!(m.get(4, 2), 6.0);
        assert_eq!(names.len(), m.n());
    }
}
