//! Spot-checking of metric axioms over a finite sample of features.
//!
//! The paper *assumes* `d` is a metric (§2.1); every correctness property of
//! ELink's δ/2 expansion and of the query pruning rules depends on it. This
//! module lets tests (and users with custom metrics) verify the axioms on
//! their actual feature population.

use crate::{Feature, Metric};

/// A violation of one of the metric axioms, with the witnessing indices into
/// the checked feature slice.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricViolation {
    /// `d(a, a) != 0` or `d(a, b) < 0`.
    Positivity {
        /// First witness index.
        i: usize,
        /// Second witness index (equal to `i` for a self-distance failure).
        j: usize,
        /// The offending distance.
        value: f64,
    },
    /// `d(a, b) != d(b, a)`.
    Symmetry {
        /// First witness index.
        i: usize,
        /// Second witness index.
        j: usize,
        /// `d(i, j)`.
        forward: f64,
        /// `d(j, i)`.
        backward: f64,
    },
    /// `d(a, c) > d(a, b) + d(b, c)`.
    TriangleInequality {
        /// Path start.
        i: usize,
        /// Intermediate point.
        j: usize,
        /// Path end.
        k: usize,
        /// `d(i, k)`.
        direct: f64,
        /// `d(i, j) + d(j, k)`.
        via: f64,
    },
}

impl std::fmt::Display for MetricViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricViolation::Positivity { i, j, value } => {
                write!(f, "positivity violated at ({i},{j}): d = {value}")
            }
            MetricViolation::Symmetry { i, j, forward, backward } => write!(
                f,
                "symmetry violated at ({i},{j}): {forward} vs {backward}"
            ),
            MetricViolation::TriangleInequality { i, j, k, direct, via } => write!(
                f,
                "triangle inequality violated: d({i},{k}) = {direct} > {via} = d({i},{j}) + d({j},{k})"
            ),
        }
    }
}

/// Checks positivity, symmetry and the triangle inequality for every pair /
/// triple in `features` (O(n³)); returns the first violation found.
///
/// `tol` absorbs floating-point noise: the triangle inequality is only
/// reported when exceeded by more than `tol`.
pub fn check_metric_axioms(
    features: &[Feature],
    metric: &dyn Metric,
    tol: f64,
) -> Result<(), MetricViolation> {
    let n = features.len();
    for i in 0..n {
        for j in 0..n {
            let d = metric.distance(&features[i], &features[j]);
            if i == j && d.abs() > tol {
                return Err(MetricViolation::Positivity { i, j, value: d });
            }
            if d < -tol {
                return Err(MetricViolation::Positivity { i, j, value: d });
            }
            let back = metric.distance(&features[j], &features[i]);
            if (d - back).abs() > tol {
                return Err(MetricViolation::Symmetry {
                    i,
                    j,
                    forward: d,
                    backward: back,
                });
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let direct = metric.distance(&features[i], &features[k]);
                let via = metric.distance(&features[i], &features[j])
                    + metric.distance(&features[j], &features[k]);
                if direct > via + tol {
                    return Err(MetricViolation::TriangleInequality {
                        i,
                        j,
                        k,
                        direct,
                        via,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMatrix, Euclidean, TableMetric, WeightedEuclidean};

    fn sample_features() -> Vec<Feature> {
        vec![
            Feature::new(vec![0.0, 0.0, 1.0, 0.5]),
            Feature::new(vec![1.0, -2.0, 0.25, 0.0]),
            Feature::new(vec![-0.5, 0.5, 0.5, 0.5]),
            Feature::new(vec![3.0, 3.0, 3.0, 3.0]),
        ]
    }

    #[test]
    fn euclidean_passes() {
        assert_eq!(
            check_metric_axioms(&sample_features(), &Euclidean, 1e-9),
            Ok(())
        );
    }

    #[test]
    fn weighted_euclidean_passes() {
        assert_eq!(
            check_metric_axioms(&sample_features(), &WeightedEuclidean::tao(), 1e-9),
            Ok(())
        );
    }

    #[test]
    fn theorem1_reduction_distances_form_a_metric() {
        // The NP-hardness reduction assigns d = 1 on graph edges and d = 2
        // otherwise; the paper notes this satisfies the metric axioms.
        let mut t = DistanceMatrix::zeros(4);
        for (i, j, v) in [
            (0, 1, 1.0),
            (0, 2, 2.0),
            (0, 3, 2.0),
            (1, 2, 1.0),
            (1, 3, 2.0),
            (2, 3, 1.0),
        ] {
            t.set(i, j, v);
        }
        let feats: Vec<Feature> = (0..4).map(|i| Feature::scalar(i as f64)).collect();
        assert_eq!(
            check_metric_axioms(&feats, &TableMetric::new(t), 1e-12),
            Ok(())
        );
    }

    #[test]
    fn detects_triangle_violation() {
        let mut t = DistanceMatrix::zeros(3);
        t.set(0, 1, 1.0);
        t.set(1, 2, 1.0);
        t.set(0, 2, 10.0); // 10 > 1 + 1
        let feats: Vec<Feature> = (0..3).map(|i| Feature::scalar(i as f64)).collect();
        let err = check_metric_axioms(&feats, &TableMetric::new(t), 1e-12).unwrap_err();
        assert!(matches!(err, MetricViolation::TriangleInequality { .. }));
    }

    struct Asymmetric;
    impl Metric for Asymmetric {
        fn distance(&self, a: &Feature, b: &Feature) -> f64 {
            // Deliberately broken: sign-dependent.
            (a.components()[0] - b.components()[0]).max(0.0)
        }
    }

    #[test]
    fn detects_symmetry_violation() {
        let feats = vec![Feature::scalar(0.0), Feature::scalar(1.0)];
        let err = check_metric_axioms(&feats, &Asymmetric, 1e-12).unwrap_err();
        assert!(matches!(err, MetricViolation::Symmetry { .. }));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::WeightedEuclidean;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn weighted_euclidean_is_always_a_metric(
            raw in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 4), 3..6),
            w in proptest::collection::vec(0.0f64..10.0, 4)
        ) {
            let feats: Vec<Feature> = raw.into_iter().map(Feature::new).collect();
            let metric = WeightedEuclidean::new(w);
            prop_assert_eq!(check_metric_axioms(&feats, &metric, 1e-6), Ok(()));
        }
    }
}
