//! Node features: the model-coefficient vectors that clustering operates on.

/// A feature vector at a sensor node — typically the coefficients of its AR
/// model (§2.2). Small (order ≤ 4 in the paper's experiments), cloneable and
/// comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    components: Vec<f64>,
}

impl Feature {
    /// Creates a feature from its components.
    pub fn new(components: Vec<f64>) -> Self {
        Feature { components }
    }

    /// Creates a 1-dimensional feature (e.g. Death Valley elevation).
    pub fn scalar(value: f64) -> Self {
        Feature {
            components: vec![value],
        }
    }

    /// Dimension (number of model coefficients).
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// Mutably borrow the components (used by online model updates).
    pub fn components_mut(&mut self) -> &mut [f64] {
        &mut self.components
    }

    /// Number of scalars a message carrying this feature must transmit.
    /// The paper's cost model charges one message per coefficient (§8.2).
    pub fn scalar_cost(&self) -> u64 {
        self.components.len() as u64
    }
}

impl From<Vec<f64>> for Feature {
    fn from(components: Vec<f64>) -> Self {
        Feature::new(components)
    }
}

impl std::fmt::Display for Feature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constructor() {
        let f = Feature::scalar(3.5);
        assert_eq!(f.dim(), 1);
        assert_eq!(f.components(), &[3.5]);
    }

    #[test]
    fn from_vec() {
        let f: Feature = vec![1.0, 2.0].into();
        assert_eq!(f.dim(), 2);
    }

    #[test]
    fn scalar_cost_counts_coefficients() {
        assert_eq!(Feature::new(vec![0.1, 0.2, 0.3, 0.4]).scalar_cost(), 4);
        assert_eq!(Feature::scalar(1.0).scalar_cost(), 1);
    }

    #[test]
    fn display_formats() {
        let f = Feature::new(vec![0.5, 0.25]);
        assert_eq!(f.to_string(), "(0.5000, 0.2500)");
    }

    #[test]
    fn mutate_components() {
        let mut f = Feature::scalar(1.0);
        f.components_mut()[0] = 2.0;
        assert_eq!(f.components(), &[2.0]);
    }
}
