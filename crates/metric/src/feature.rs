//! Node features: the model-coefficient vectors that clustering operates on.

/// Inline capacity of [`Feature`]: the paper's AR models use order ≤ 4
/// (§2.2/§8.1), so four coefficients cover every experiment without heap
/// storage.
const INLINE_DIM: usize = 4;

/// Backing storage for a [`Feature`]: a fixed inline buffer for the common
/// small dimensions, a heap vector beyond [`INLINE_DIM`].
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    /// `len` live components at the front of a fixed array.
    Inline { len: u8, buf: [f64; INLINE_DIM] },
    /// Arbitrary dimension (rare — only synthetic high-dim tests).
    Heap(Vec<f64>),
}

/// A feature vector at a sensor node — typically the coefficients of its AR
/// model (§2.2). Small (order ≤ 4 in the paper's experiments), cloneable and
/// comparable.
///
/// Features up to dimension 4 are stored inline — no heap allocation —
/// which makes [`Clone`] on the expand/descent broadcast hot paths a plain
/// memcpy. Higher dimensions transparently fall back to a heap vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    repr: Repr,
}

impl Feature {
    /// Creates a feature from its components.
    pub fn new(components: Vec<f64>) -> Self {
        Feature {
            repr: if components.len() <= INLINE_DIM {
                let mut buf = [0.0; INLINE_DIM];
                buf[..components.len()].copy_from_slice(&components);
                Repr::Inline {
                    len: components.len() as u8,
                    buf,
                }
            } else {
                Repr::Heap(components)
            },
        }
    }

    /// Creates a 1-dimensional feature (e.g. Death Valley elevation).
    pub fn scalar(value: f64) -> Self {
        let mut buf = [0.0; INLINE_DIM];
        buf[0] = value;
        Feature {
            repr: Repr::Inline { len: 1, buf },
        }
    }

    /// Dimension (number of model coefficients).
    pub fn dim(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Borrow the components.
    pub fn components(&self) -> &[f64] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Mutably borrow the components (used by online model updates).
    pub fn components_mut(&mut self) -> &mut [f64] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of scalars a message carrying this feature must transmit.
    /// The paper's cost model charges one message per coefficient (§8.2).
    pub fn scalar_cost(&self) -> u64 {
        self.dim() as u64
    }
}

impl From<Vec<f64>> for Feature {
    fn from(components: Vec<f64>) -> Self {
        Feature::new(components)
    }
}

impl std::fmt::Display for Feature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constructor() {
        let f = Feature::scalar(3.5);
        assert_eq!(f.dim(), 1);
        assert_eq!(f.components(), &[3.5]);
    }

    #[test]
    fn from_vec() {
        let f: Feature = vec![1.0, 2.0].into();
        assert_eq!(f.dim(), 2);
    }

    #[test]
    fn scalar_cost_counts_coefficients() {
        assert_eq!(Feature::new(vec![0.1, 0.2, 0.3, 0.4]).scalar_cost(), 4);
        assert_eq!(Feature::scalar(1.0).scalar_cost(), 1);
    }

    #[test]
    fn display_formats() {
        let f = Feature::new(vec![0.5, 0.25]);
        assert_eq!(f.to_string(), "(0.5000, 0.2500)");
    }

    #[test]
    fn mutate_components() {
        let mut f = Feature::scalar(1.0);
        f.components_mut()[0] = 2.0;
        assert_eq!(f.components(), &[2.0]);
    }

    /// Inline and heap representations must behave identically across the
    /// capacity boundary — equality compares components, not storage.
    #[test]
    fn inline_and_heap_agree_across_boundary() {
        for dim in 1..=8usize {
            let v: Vec<f64> = (0..dim).map(|i| i as f64 * 0.5).collect();
            let f = Feature::new(v.clone());
            assert_eq!(f.dim(), dim);
            assert_eq!(f.components(), v.as_slice());
            assert_eq!(f.scalar_cost(), dim as u64);
            let g = f.clone();
            assert_eq!(f, g);
        }
        // Padding must not leak into equality: same prefix, different
        // construction path.
        assert_eq!(Feature::scalar(2.0), Feature::new(vec![2.0]));
    }
}
