//! Feature vectors and metric distances for ELink (§2.2).
//!
//! Each sensor node regresses its time series into an AR model; the model
//! coefficients are the node's *feature* `F_i`. Clustering operates on a
//! metric distance `d(F_i, F_j)` over these features. The paper motivates a
//! **weighted Euclidean** distance (higher-order coefficients matter more)
//! and formulates everything for general metric spaces, so this crate
//! exposes a [`Metric`] trait plus the concrete metrics the experiments use.

// Every public item must carry a doc comment (simlint pub-doc-coverage
// enforces the same invariant pre-rustdoc).
#![warn(missing_docs)]

pub mod axioms;
/// Dense pairwise distance matrices over feature sets.
pub mod distance_matrix;
/// The `Feature` value type (scalar/vector signals).
pub mod feature;

pub use axioms::{check_metric_axioms, MetricViolation};
pub use distance_matrix::DistanceMatrix;
pub use feature::Feature;

/// A metric distance over [`Feature`]s.
///
/// Implementations must satisfy positivity, symmetry and the triangle
/// inequality ([`axioms::check_metric_axioms`] spot-checks this in tests);
/// the ELink δ/2 expansion rule and every query-pruning rule in §7 rely on
/// the triangle inequality.
pub trait Metric: Send + Sync {
    /// Distance between two features.
    fn distance(&self, a: &Feature, b: &Feature) -> f64;
}

/// Plain Euclidean distance (all weights 1).
#[derive(Debug, Clone, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    fn distance(&self, a: &Feature, b: &Feature) -> f64 {
        a.components()
            .iter()
            .zip(b.components())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

/// Weighted Euclidean distance `√(Σ w_k (a_k − b_k)²)` with non-negative
/// weights — the paper's distance for AR coefficients (§2.2). For the Tao
/// model the paper uses weights `(0.5, 0.3, 0.2, 0.1)`.
///
/// ```
/// use elink_metric::{Feature, Metric, WeightedEuclidean};
/// let metric = WeightedEuclidean::new(vec![0.9, 0.1]);
/// let n1 = Feature::new(vec![0.5, 0.4]);
/// let n2 = Feature::new(vec![0.5, 0.3]); // differs in the low-weight coefficient
/// let n3 = Feature::new(vec![0.4, 0.4]); // differs in the high-weight coefficient
/// assert!(metric.distance(&n1, &n2) < metric.distance(&n1, &n3));
/// ```
#[derive(Debug, Clone)]
pub struct WeightedEuclidean {
    weights: Vec<f64>,
}

impl WeightedEuclidean {
    /// Creates a weighted Euclidean metric.
    ///
    /// # Panics
    /// Panics if any weight is negative (that would break the metric axioms).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        WeightedEuclidean { weights }
    }

    /// The Tao experiment weights from §8.1.
    pub fn tao() -> Self {
        WeightedEuclidean::new(vec![0.5, 0.3, 0.2, 0.1])
    }

    /// Borrow the weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Metric for WeightedEuclidean {
    fn distance(&self, a: &Feature, b: &Feature) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        debug_assert!(a.dim() <= self.weights.len(), "feature wider than weights");
        a.components()
            .iter()
            .zip(b.components())
            .zip(&self.weights)
            .map(|((x, y), w)| w * (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

/// Absolute difference of scalar features — used for the Death Valley
/// elevation data where a node's feature is a single altitude value (§8.1).
#[derive(Debug, Clone, Default)]
pub struct Absolute;

impl Metric for Absolute {
    fn distance(&self, a: &Feature, b: &Feature) -> f64 {
        debug_assert_eq!(a.dim(), 1);
        debug_assert_eq!(b.dim(), 1);
        (a.components()[0] - b.components()[0]).abs()
    }
}

/// A metric defined by an explicit distance table — used in tests to recreate
/// the paper's worked examples (Fig 3, Fig 5) and the NP-hardness reduction
/// (d ∈ {1,2} from clique cover, Theorem 1).
#[derive(Debug, Clone)]
pub struct TableMetric {
    table: DistanceMatrix,
}

impl TableMetric {
    /// Builds a table metric; the feature's single component is interpreted
    /// as the node index into the table.
    pub fn new(table: DistanceMatrix) -> Self {
        TableMetric { table }
    }
}

impl Metric for TableMetric {
    fn distance(&self, a: &Feature, b: &Feature) -> f64 {
        let i = a.components()[0] as usize;
        let j = b.components()[0] as usize;
        self.table.get(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_value() {
        let a = Feature::new(vec![0.0, 0.0]);
        let b = Feature::new(vec![3.0, 4.0]);
        assert!((Euclidean.distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_euclidean_weights_higher_order_coeffs() {
        // The paper's motivating example (§2.2): N1 vs N2 differ in the 2nd
        // coefficient, N1 vs N3 differ in the 1st; with decreasing weights
        // N1 should be closer to N2 (first coefficient matters more).
        let w = WeightedEuclidean::new(vec![0.9, 0.1]);
        let n1 = Feature::new(vec![0.5, 0.4]);
        let n2 = Feature::new(vec![0.5, 0.3]);
        let n3 = Feature::new(vec![0.4, 0.4]);
        assert!(w.distance(&n1, &n2) < w.distance(&n1, &n3));
    }

    #[test]
    fn tao_weights() {
        assert_eq!(WeightedEuclidean::tao().weights(), &[0.5, 0.3, 0.2, 0.1]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = WeightedEuclidean::new(vec![1.0, -0.5]);
    }

    #[test]
    fn absolute_metric_scalar() {
        let a = Feature::scalar(175.0);
        let b = Feature::scalar(1996.0);
        assert_eq!(Absolute.distance(&a, &b), 1821.0);
    }

    #[test]
    fn table_metric_reads_matrix() {
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 1, 4.0);
        m.set(1, 2, 6.0);
        m.set(0, 2, 9.0);
        let t = TableMetric::new(m);
        assert_eq!(
            t.distance(&Feature::scalar(0.0), &Feature::scalar(1.0)),
            4.0
        );
        assert_eq!(
            t.distance(&Feature::scalar(2.0), &Feature::scalar(1.0)),
            6.0
        );
    }

    #[test]
    fn identity_distance_is_zero() {
        let f = Feature::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(WeightedEuclidean::tao().distance(&f, &f), 0.0);
    }
}
