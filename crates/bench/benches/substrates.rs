//! Substrate micro-benchmarks: event-loop throughput, routing-table build,
//! quadtree decomposition, AR batch fit vs RLS updates, spectral embedding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elink_netsim::{Ctx, DelayModel, Protocol, SimNetwork, Simulator};
use elink_topology::{QuadTree, RoutingTable, Topology};
use std::hint::black_box;

/// Flooding protocol used as the event-throughput workload.
struct Flood {
    seen: bool,
}

impl Protocol for Flood {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        if ctx.id() == 0 {
            self.seen = true;
            ctx.broadcast_neighbors(&(), "flood", 1);
        }
    }

    fn on_message(&mut self, _from: usize, _msg: (), ctx: &mut Ctx<'_, ()>) {
        if !self.seen {
            self.seen = true;
            ctx.broadcast_neighbors(&(), "flood", 1);
        }
    }
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    for side in [16usize, 32] {
        let n = side * side;
        let topo = Topology::grid(side, side);
        group.bench_with_input(BenchmarkId::new("routing_table_build", n), &n, |b, _| {
            b.iter(|| black_box(RoutingTable::build(topo.graph())))
        });
        group.bench_with_input(BenchmarkId::new("quadtree_build", n), &n, |b, _| {
            b.iter(|| black_box(QuadTree::build(&topo)))
        });
        let network = SimNetwork::new(topo.clone());
        group.bench_with_input(BenchmarkId::new("sim_flood", n), &n, |b, _| {
            b.iter(|| {
                let nodes = (0..n).map(|_| Flood { seen: false }).collect();
                let mut sim = Simulator::new(network.clone(), DelayModel::Sync, 0, nodes);
                black_box(sim.run_to_completion())
            })
        });
    }

    // AR fitting: batch vs online.
    let series: Vec<f64> = {
        let mut xs = vec![1.0];
        let mut state = 42u64;
        for _ in 1..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let prev = *xs.last().unwrap();
            xs.push(0.7 * prev + 0.2 * noise);
        }
        xs
    };
    group.bench_function("ar3_batch_fit_5000", |b| {
        b.iter(|| black_box(elink_armodel::ArModel::fit(&series, 3)))
    });
    group.bench_function("rls_stream_5000", |b| {
        b.iter(|| {
            let mut rls = elink_armodel::RlsState::new(3, 1e6);
            for w in series.windows(4) {
                rls.update(&[w[2], w[1], w[0]], w[3]);
            }
            black_box(rls.coefficients()[0])
        })
    });

    // Spectral embedding on a mid-size terrain network (the centralized
    // baseline's dominant cost).
    let data = elink_datasets::TerrainDataset::generate(300, 6, 0.55, 1);
    let features = data.features();
    group.bench_function("spectral_embedding_300", |b| {
        b.iter(|| {
            black_box(elink_spectral::SpectralClusterer::new(
                data.topology(),
                &features,
                std::sync::Arc::new(elink_metric::Absolute),
                elink_spectral::SpectralConfig {
                    max_k: 32,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
