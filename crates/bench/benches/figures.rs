//! One Criterion benchmark per paper figure/table.
//!
//! Each benchmark executes the corresponding experiment at its
//! seconds-scale `quick()` preset, so `cargo bench -p elink-bench --bench
//! figures` times every result-regeneration path end to end. The
//! paper-scale numbers come from `cargo run -p elink-experiments --release
//! --bin all` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig08_tao_quality", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig08::run(
                elink_experiments::fig08::Params::quick(),
            ))
        })
    });
    group.bench_function("fig09_terrain_quality", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig09::run(
                elink_experiments::fig09::Params::quick(),
            ))
        })
    });
    group.bench_function("fig10_update_cost_vs_slack", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig10::run(
                elink_experiments::fig10::Params::quick(),
            ))
        })
    });
    group.bench_function("fig11_quality_vs_slack", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig11::run(
                elink_experiments::fig11::Params::quick(),
            ))
        })
    });
    group.bench_function("fig12_cost_over_time", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig12::run(
                elink_experiments::fig12::Params::quick(),
            ))
        })
    });
    group.bench_function("fig13_cost_vs_network_size", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig13::run(
                elink_experiments::fig13::Params::quick(),
            ))
        })
    });
    group.bench_function("fig14_range_query_tao", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig14::run(
                elink_experiments::fig14::Params::quick(),
            ))
        })
    });
    group.bench_function("fig15_range_query_synthetic", |b| {
        b.iter(|| {
            black_box(elink_experiments::fig15::run(
                elink_experiments::fig15::Params::quick(),
            ))
        })
    });
    group.bench_function("ext_path_queries", |b| {
        b.iter(|| {
            black_box(elink_experiments::ext_path::run(
                elink_experiments::ext_path::Params::quick(),
            ))
        })
    });
    group.bench_function("ext_theory_complexity", |b| {
        b.iter(|| {
            black_box(elink_experiments::ext_theory::run(
                elink_experiments::ext_theory::Params::quick(),
            ))
        })
    });
    group.bench_function("ext_repr_sampling", |b| {
        b.iter(|| {
            black_box(elink_experiments::ext_repr::run(
                elink_experiments::ext_repr::Params::quick(),
            ))
        })
    });
    group.bench_function("ext_stretch_routing", |b| {
        b.iter(|| {
            black_box(elink_experiments::ext_stretch::run(
                elink_experiments::ext_stretch::Params::quick(),
            ))
        })
    });
    group.bench_function("ext_ablation_switching", |b| {
        b.iter(|| {
            black_box(elink_experiments::ext_ablation::run(
                elink_experiments::ext_ablation::Params::quick(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
