//! Query-processing benchmarks: index build, backbone build, range queries
//! (clustered vs TAG), and path queries (clustered vs flooding).

use criterion::{criterion_group, criterion_main, Criterion};
use elink_core::{run_implicit, ElinkConfig};
use elink_datasets::TerrainDataset;
use elink_metric::{Absolute, Feature};
use elink_netsim::SimNetwork;
use elink_query::{
    elink_path_query, elink_range_query, flooding_path_query, tag_range_query, Backbone,
    DistributedIndex, TagTree,
};
use std::hint::black_box;
use std::sync::Arc;

const DELTA: f64 = 300.0;

fn bench_queries(c: &mut Criterion) {
    let data = TerrainDataset::generate(300, 6, 0.55, 3);
    let features = data.features();
    let network = SimNetwork::new(data.topology().clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(DELTA),
    );
    let (index, _) = DistributedIndex::build(&outcome.clustering, &features, &Absolute);
    let (backbone, _) = Backbone::build(&outcome.clustering, network.routing());
    let tag_tree = TagTree::build(data.topology());
    let q = Feature::scalar(800.0);
    let danger = Feature::scalar(175.0);

    let mut group = c.benchmark_group("queries");
    group.sample_size(20);

    group.bench_function("index_build", |b| {
        b.iter(|| {
            black_box(DistributedIndex::build(
                &outcome.clustering,
                &features,
                &Absolute,
            ))
        })
    });
    group.bench_function("backbone_build", |b| {
        b.iter(|| black_box(Backbone::build(&outcome.clustering, network.routing())))
    });
    group.bench_function("range_query_elink", |b| {
        b.iter(|| {
            black_box(elink_range_query(
                &outcome.clustering,
                &index,
                &backbone,
                &features,
                &Absolute,
                DELTA,
                0,
                &q,
                150.0,
            ))
        })
    });
    group.bench_function("range_query_tag", |b| {
        b.iter(|| black_box(tag_range_query(&tag_tree, &features, &Absolute, &q, 150.0)))
    });
    group.bench_function("path_query_elink", |b| {
        b.iter(|| {
            black_box(elink_path_query(
                &outcome.clustering,
                &index,
                &backbone,
                data.topology(),
                &features,
                &Absolute,
                DELTA,
                0,
                299,
                &danger,
                200.0,
            ))
        })
    });
    group.bench_function("path_query_flooding", |b| {
        b.iter(|| {
            black_box(flooding_path_query(
                data.topology(),
                &features,
                &Absolute,
                0,
                299,
                &danger,
                200.0,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
