//! Head-to-head clustering benchmarks across network sizes.
//!
//! Times the wall-clock of each clustering algorithm (simulated protocols
//! included) on the uncorrelated synthetic topology family — the runtime
//! companion to Fig 13's message-cost scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elink_baselines::{hierarchical_clustering, spanning_forest_clustering};
use elink_core::{run_explicit, run_implicit, run_unordered, ElinkConfig};
use elink_datasets::SyntheticDataset;
use elink_metric::Euclidean;
use elink_netsim::{DelayModel, SimNetwork};
use std::hint::black_box;
use std::sync::Arc;

const DELTA: f64 = 0.05;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);

    for n in [100usize, 400] {
        let data = SyntheticDataset::generate(n, 400, 7);
        let features = data.features();
        let network = SimNetwork::new(data.topology().clone());
        let config = ElinkConfig::for_delta(DELTA);

        group.bench_with_input(BenchmarkId::new("elink_implicit", n), &n, |b, _| {
            b.iter(|| {
                black_box(run_implicit(
                    &network,
                    &features,
                    Arc::new(Euclidean),
                    config,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("elink_explicit", n), &n, |b, _| {
            b.iter(|| {
                black_box(run_explicit(
                    &network,
                    &features,
                    Arc::new(Euclidean),
                    config,
                    DelayModel::Sync,
                    0,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("elink_explicit_async", n), &n, |b, _| {
            b.iter(|| {
                black_box(run_explicit(
                    &network,
                    &features,
                    Arc::new(Euclidean),
                    config,
                    DelayModel::Async { min: 1, max: 4 },
                    0,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("elink_unordered", n), &n, |b, _| {
            b.iter(|| {
                black_box(run_unordered(
                    &network,
                    &features,
                    Arc::new(Euclidean),
                    config,
                    DelayModel::Sync,
                    0,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("spanning_forest", n), &n, |b, _| {
            b.iter(|| {
                black_box(spanning_forest_clustering(
                    data.topology(),
                    &features,
                    &Euclidean,
                    DELTA,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, _| {
            b.iter(|| {
                black_box(hierarchical_clustering(
                    data.topology(),
                    &features,
                    &Euclidean,
                    DELTA,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
