//! Machine-readable benchmark reports: the data behind `BENCH_elink.json`.
//!
//! [`run_benches`](crate::report::run_benches) executes quick presets of the paper experiments
//! (fig08/fig09/fig11) plus a substrate microbench, each returning a
//! [`BenchResult`](crate::report::BenchResult) with wall-clock, simulated time, message totals and the
//! per-phase breakdown from the [`elink_netsim::metrics`] registry.
//!
//! Two JSON views exist on purpose:
//!
//! * [`report_json`](crate::report::report_json) — the full report written to `BENCH_elink.json`,
//!   including `wall_ms`;
//! * [`deterministic_json`](crate::report::deterministic_json) — the same report with every wall-clock field
//!   removed. Same-seed runs must produce **byte-identical** deterministic
//!   views (`bench_report --check` and a unit test both enforce this);
//!   wall-clock is reported for trend tracking but never part of the
//!   determinism contract.
//!
//! Byte accounting: the §8.2 cost model counts message *scalars*; the
//! `bytes` field prices each scalar at 8 bytes (one `f64`), so
//! `bytes = 8 × total_cost`.

use elink_core::maintenance_protocol::{maintenance_nodes, MaintMsg};
use elink_core::{run_explicit, run_implicit, ElinkConfig, ElinkOutcome};
use elink_datasets::{TaoDataset, TaoParams, TerrainDataset};
use elink_metric::{DistanceMatrix, Feature, Metric};
use elink_netsim::{Ctx, DelayModel, Metrics, Protocol, SimNetwork, Simulator};
use std::sync::Arc;
use std::time::Instant;

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark name.
    pub bench: &'static str,
    /// Network size (nodes).
    pub n: usize,
    /// Host wall-clock for the measured section, in milliseconds. The ONLY
    /// nondeterministic field; excluded from [`deterministic_json`].
    pub wall_ms: u64,
    /// Simulated time at quiescence (ticks).
    pub sim_time: u64,
    /// Total link-level transmissions (§8.2 packets).
    pub messages: u64,
    /// Total payload bytes: 8 bytes per §8.2 message scalar.
    pub bytes: u64,
    /// The run's observability registry (phases, counters, histograms).
    pub metrics: Metrics,
}

/// The fig08/fig11 quick-preset Tao grid (6×9 sensors, hourly days).
fn quick_tao(days: usize) -> TaoParams {
    TaoParams {
        rows: 6,
        cols: 9,
        day_len: 24,
        days,
    }
}

/// δ at quantile `q` of the pairwise feature-distance distribution
/// (the same resolution rule the experiment harness uses).
fn delta_quantile(features: &[Feature], metric: &dyn Metric, q: f64) -> f64 {
    let dm = DistanceMatrix::from_features(features, metric);
    let n = features.len();
    let mut ds = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            ds.push(dm.get(i, j));
        }
    }
    ds.sort_by(|a, b| a.total_cmp(b));
    ds[((ds.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize].max(1e-12)
}

fn outcome_result(
    bench: &'static str,
    n: usize,
    wall_ms: u64,
    outcome: ElinkOutcome,
) -> BenchResult {
    BenchResult {
        bench,
        n,
        wall_ms,
        sim_time: outcome.elapsed,
        messages: outcome.costs.total_packets(),
        bytes: 8 * outcome.costs.total_cost(),
        metrics: outcome.metrics,
    }
}

/// fig08 quick preset, implicit mode: Tao data, δ at the 0.6 quantile.
fn bench_fig08_implicit() -> BenchResult {
    let data = TaoDataset::generate(quick_tao(10), 7);
    let features = data.features();
    let metric: Arc<dyn Metric> = Arc::new(data.metric().clone());
    let delta = delta_quantile(&features, metric.as_ref(), 0.6);
    let network = SimNetwork::new(data.topology().clone());
    let start = Instant::now();
    let outcome = run_implicit(&network, &features, metric, ElinkConfig::for_delta(delta));
    let wall = start.elapsed().as_millis() as u64;
    outcome_result("fig08_tao_implicit", features.len(), wall, outcome)
}

/// fig08 quick preset, explicit mode (synchronization messages included).
fn bench_fig08_explicit() -> BenchResult {
    let data = TaoDataset::generate(quick_tao(10), 7);
    let features = data.features();
    let metric: Arc<dyn Metric> = Arc::new(data.metric().clone());
    let delta = delta_quantile(&features, metric.as_ref(), 0.6);
    let network = SimNetwork::new(data.topology().clone());
    let start = Instant::now();
    let outcome = run_explicit(
        &network,
        &features,
        metric,
        ElinkConfig::for_delta(delta),
        DelayModel::Sync,
        0,
    );
    let wall = start.elapsed().as_millis() as u64;
    outcome_result("fig08_tao_explicit", features.len(), wall, outcome)
}

/// fig09 quick preset: 150-sensor terrain, absolute δ = 500 m.
fn bench_fig09_implicit() -> BenchResult {
    let data = TerrainDataset::generate(150, 7, 0.55, 1);
    let features = data.features();
    let metric: Arc<dyn Metric> = Arc::new(data.metric());
    let network = SimNetwork::new(data.topology().clone());
    let start = Instant::now();
    let outcome = run_implicit(&network, &features, metric, ElinkConfig::for_delta(500.0));
    let wall = start.elapsed().as_millis() as u64;
    outcome_result("fig09_terrain_implicit", features.len(), wall, outcome)
}

/// fig11 quick preset: cluster the Tao network, then stream the evaluation
/// month through the §6 maintenance *protocol* (real messages on the
/// simulator, so the `maint.*` phases are recorded).
fn bench_fig11_maintenance() -> BenchResult {
    let data = TaoDataset::generate(quick_tao(8), 7);
    let features = data.features();
    let metric: Arc<dyn Metric> = Arc::new(data.metric().clone());
    let delta = delta_quantile(&features, metric.as_ref(), 0.6);
    let slack = 0.1 * delta;
    let network = SimNetwork::new(data.topology().clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::clone(&metric),
        ElinkConfig::for_delta(delta),
    );
    let nodes = maintenance_nodes(
        &outcome.clustering,
        Arc::clone(&metric),
        &features,
        delta,
        slack,
    );
    let start = Instant::now();
    let mut sim = Simulator::new(network, DelayModel::Sync, 0, nodes);
    sim.run_to_completion(); // drain (empty) start events
    let mut models = data.train_models();
    let steps = data.evaluation()[0].len();
    for t in 0..steps {
        for (node, model) in models.iter_mut().enumerate() {
            model.observe(data.evaluation()[node][t]);
            let now = sim.now();
            sim.inject(now, node, MaintMsg::FeatureUpdate(model.feature()));
            sim.run_to_completion();
        }
    }
    let wall = start.elapsed().as_millis() as u64;
    let n = sim.nodes().len();
    BenchResult {
        bench: "fig11_tao_maintenance",
        n,
        wall_ms: wall,
        sim_time: sim.now(),
        messages: sim.costs().total_packets(),
        bytes: 8 * sim.costs().total_cost(),
        metrics: sim.take_metrics(),
    }
}

/// Substrate microbench: every node unicasts to its antipode on an 8×8
/// grid, exercising multi-hop routing and the engine's hop histogram.
fn bench_substrate_unicast() -> BenchResult {
    struct Storm {
        n: usize,
    }
    impl Protocol for Storm {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            let dst = (ctx.id() + self.n / 2) % self.n;
            ctx.unicast(dst, 0u8, "storm", 1);
        }
        fn on_message(&mut self, _from: usize, _msg: u8, _ctx: &mut Ctx<'_, u8>) {}
    }
    let topo = elink_topology::Topology::grid(8, 8);
    let n = topo.n();
    let network = SimNetwork::new(topo);
    let nodes: Vec<Storm> = (0..n).map(|_| Storm { n }).collect();
    let start = Instant::now();
    let mut sim = Simulator::new(network, DelayModel::Sync, 0, nodes);
    let elapsed = sim.run_to_completion();
    let wall = start.elapsed().as_millis() as u64;
    BenchResult {
        bench: "substrate_unicast_storm",
        n,
        wall_ms: wall,
        sim_time: elapsed,
        messages: sim.costs().total_packets(),
        bytes: 8 * sim.costs().total_cost(),
        metrics: sim.take_metrics(),
    }
}

/// Runs every benchmark in a fixed order.
pub fn run_benches() -> Vec<BenchResult> {
    vec![
        bench_fig08_implicit(),
        bench_fig08_explicit(),
        bench_fig09_implicit(),
        bench_fig11_maintenance(),
        bench_substrate_unicast(),
    ]
}

/// JSON-escapes nothing: every key/value we emit is a known identifier or a
/// number, so plain formatting is safe. Phases render as
/// `{"entries":..,"first_enter":..,"last_exit":..,"span":..}`.
fn result_json(r: &BenchResult, include_wall: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"bench\":\"{}\",\"n\":{}", r.bench, r.n));
    if include_wall {
        out.push_str(&format!(",\"wall_ms\":{}", r.wall_ms));
    }
    out.push_str(&format!(
        ",\"sim_time\":{},\"messages\":{},\"bytes\":{}",
        r.sim_time, r.messages, r.bytes
    ));
    out.push_str(",\"phases\":{");
    let mut first = true;
    for (name, p) in r.metrics.phases() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"entries\":{},\"first_enter\":{},\"last_exit\":{},\"span\":{}}}",
            name,
            p.entries,
            p.first_enter,
            p.last_exit,
            p.span()
        ));
    }
    out.push_str("}}");
    out
}

fn report(results: &[BenchResult], include_wall: bool) -> String {
    let mut out = String::from("{\"schema\":\"elink-bench/v1\",\"results\":[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&result_json(r, include_wall));
    }
    out.push_str("\n]}\n");
    out
}

/// The full `BENCH_elink.json` payload (wall-clock included).
pub fn report_json(results: &[BenchResult]) -> String {
    report(results, true)
}

/// The determinism view: identical to [`report_json`] minus every
/// `wall_ms` field. Two same-seed runs must agree byte-for-byte.
pub fn deterministic_json(results: &[BenchResult]) -> String {
    report(results, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrate_storm_records_hop_histogram() {
        let r = bench_substrate_unicast();
        assert_eq!(r.n, 64);
        let hist = r.metrics.histogram("net.unicast_hops").unwrap();
        assert_eq!(hist.count(), 64);
        assert!(r.messages >= hist.sum());
    }

    #[test]
    fn fig08_implicit_phases_cover_growth() {
        let r = bench_fig08_implicit();
        assert!(r.metrics.phase("run").is_some());
        assert!(r
            .metrics
            .phases()
            .any(|(name, _)| name.starts_with("growth.")));
        assert!(r.sim_time > 0 && r.messages > 0 && r.bytes >= r.messages);
    }

    #[test]
    fn deterministic_view_is_byte_identical_across_same_seed_runs() {
        // The satellite determinism test: every metric field of the report
        // except wall_ms must be reproducible bit-for-bit.
        let a = vec![bench_fig08_implicit(), bench_substrate_unicast()];
        let b = vec![bench_fig08_implicit(), bench_substrate_unicast()];
        assert_eq!(deterministic_json(&a), deterministic_json(&b));
    }

    #[test]
    fn json_shape_has_required_keys() {
        let r = bench_substrate_unicast();
        let json = report_json(std::slice::from_ref(&r));
        for key in [
            "\"schema\":\"elink-bench/v1\"",
            "\"bench\":\"substrate_unicast_storm\"",
            "\"n\":64",
            "\"wall_ms\":",
            "\"sim_time\":",
            "\"messages\":",
            "\"bytes\":",
            "\"phases\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!deterministic_json(std::slice::from_ref(&r)).contains("wall_ms"));
    }
}
