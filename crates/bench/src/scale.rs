//! The 1k→64k scaling bench behind `BENCH_scale.json`.
//!
//! The paper's central claim is O(N)-message clustering (Theorem 3); this
//! bench puts the reproduction's msgs/node curve next to it at fleet sizes
//! up to 64k nodes — the "Fundamentals of Large Sensor Networks" regime —
//! and doubles as the scheduler-refactor scoreboard:
//!
//! * every size runs the identical workload under **both**
//!   [`SchedulerKind`](elink_netsim::SchedulerKind)s; the run digests (per-kind `CostBook`, per-node
//!   tallies, assignments, quiescence time) must be byte-identical, which
//!   is the determinism contract of the calendar-queue refactor;
//! * `wall_ms` is recorded per backend, so the report itself carries the
//!   heap-baseline speedup at each size.
//!
//! Fleets are unit-spacing grids (`O(n)` construction) with a smooth
//! two-frequency feature field, clustered by implicit-mode ELink over a
//! synchronous link — the §4 configuration, which is broadcast-only.
//! Broadcast-only matters at this scale: the engine's routing table is
//! `O(n²)` memory (≈ 34 GiB at 64k) and is built lazily; the bench asserts
//! it was never materialized.

use elink_core::protocol::SignalMode;
use elink_core::{run_with_options, ElinkConfig, ElinkOutcome, RunOptions};
use elink_metric::{Absolute, Feature};
use elink_netsim::{DelayModel, SchedulerKind, SimNetwork};
use elink_topology::Topology;
use std::sync::Arc;
use std::time::Instant;

/// Grid sides of the full preset: 1k, 4k, 16k and 64k nodes.
pub const FULL_SIDES: [usize; 4] = [32, 64, 128, 256];
/// Grid sides of the quick preset used by `--check` and CI smokes.
pub const QUICK_SIDES: [usize; 2] = [32, 64];

/// One fleet size's measurements.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Fleet size (nodes).
    pub n: usize,
    /// Clusters in the output clustering.
    pub clusters: usize,
    /// Simulated quiescence time (ticks).
    pub sim_time: u64,
    /// Total link-level transmissions.
    pub messages: u64,
    /// Total payload bytes (8 per §8.2 scalar).
    pub bytes: u64,
    /// Messages per node — the curve to hold against the paper's O(N).
    pub msgs_per_node: f64,
    /// Bytes per node.
    pub bytes_per_node: f64,
    /// High-water mark of simultaneously live scheduler events.
    pub peak_live_events: usize,
    /// Wall-clock of the heap-backend run (the pre-refactor baseline),
    /// in milliseconds.
    pub wall_ms_heap: u64,
    /// Wall-clock of the calendar-backend run, in milliseconds.
    pub wall_ms_calendar: u64,
}

/// The smooth synthetic feature field: two incommensurate spatial
/// frequencies over the grid, producing region-shaped clusters at every
/// size without any O(n²) preprocessing.
fn grid_features(side: usize) -> Vec<Feature> {
    let mut out = Vec::with_capacity(side * side);
    for r in 0..side {
        for c in 0..side {
            let x = c as f64;
            let y = r as f64;
            let v = 40.0 * (x / 17.0).sin() + 40.0 * (y / 13.0).cos();
            out.push(Feature::scalar(v));
        }
    }
    out
}

/// δ for the scaling fleets: wide enough for multi-node clusters, narrow
/// enough that the field's ridges split the grid into many regions.
const SCALE_DELTA: f64 = 25.0;

/// FNV-1a over a byte stream — cheap, deterministic, dependency-free.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// A digest of everything the determinism contract covers: per-kind
/// message bills, per-node tx/rx tallies, the assignment vector, cluster
/// roots, and quiescence time. Two runs of the same seed must produce
/// byte-identical digests regardless of scheduler backend.
pub fn run_digest(outcome: &ElinkOutcome) -> String {
    let mut s = String::new();
    for (kind, st) in outcome.costs.iter() {
        s.push_str(&format!("{kind}:{}:{};", st.packets, st.cost));
    }
    s.push_str(&format!(
        "total:{}:{};elapsed:{};",
        outcome.costs.total_packets(),
        outcome.costs.total_cost(),
        outcome.elapsed
    ));
    let mut fnv = Fnv::new();
    for &a in &outcome.clustering.assignment {
        fnv.write_u64(a as u64);
    }
    for c in &outcome.clustering.clusters {
        fnv.write_u64(c.root as u64);
    }
    for node in outcome.costs.nodes() {
        fnv.write_u64(node.tx_packets);
        fnv.write_u64(node.rx_packets);
        fnv.write_u64(node.tx_cost);
    }
    s.push_str(&format!(
        "clusters:{};state_fnv:{:016x}",
        outcome.clustering.cluster_count(),
        fnv.0
    ));
    s
}

fn run_one(network: &SimNetwork, features: &[Feature], kind: SchedulerKind) -> (ElinkOutcome, u64) {
    let start = Instant::now();
    let outcome = run_with_options(
        network,
        features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(SCALE_DELTA),
        SignalMode::Implicit,
        DelayModel::Sync,
        0,
        RunOptions {
            arq: None,
            scheduler: kind,
        },
    );
    (outcome, start.elapsed().as_millis() as u64)
}

/// Runs one fleet size under both scheduler backends.
///
/// # Panics
/// Panics if the two backends' run digests differ (the determinism
/// contract), or if the broadcast-only run materialized the O(n²) routing
/// table.
pub fn run_point(side: usize) -> ScalePoint {
    let topology = Topology::grid(side, side);
    let n = topology.n();
    let features = grid_features(side);
    let network = SimNetwork::new(topology);

    let (heap_outcome, wall_ms_heap) = run_one(&network, &features, SchedulerKind::Heap);
    let (outcome, wall_ms_calendar) = run_one(&network, &features, SchedulerKind::Calendar);

    let heap_digest = run_digest(&heap_outcome);
    let calendar_digest = run_digest(&outcome);
    assert_eq!(
        heap_digest, calendar_digest,
        "scheduler backends diverged at n={n}"
    );
    assert!(
        !network.routing_built(),
        "broadcast-only run materialized the O(n²) routing table"
    );

    let messages = outcome.costs.total_packets();
    let bytes = 8 * outcome.costs.total_cost();
    ScalePoint {
        n,
        clusters: outcome.clustering.cluster_count(),
        sim_time: outcome.elapsed,
        messages,
        bytes,
        msgs_per_node: messages as f64 / n as f64,
        bytes_per_node: bytes as f64 / n as f64,
        peak_live_events: outcome.peak_live_events,
        wall_ms_heap,
        wall_ms_calendar,
    }
}

/// Runs the bench over the given grid sides (see [`FULL_SIDES`] /
/// [`QUICK_SIDES`]).
pub fn run_scale(sides: &[usize]) -> Vec<ScalePoint> {
    sides.iter().map(|&side| run_point(side)).collect()
}

fn point_json(p: &ScalePoint, include_wall: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"n\":{},\"clusters\":{},\"sim_time\":{},\"messages\":{},\"bytes\":{}",
        p.n, p.clusters, p.sim_time, p.messages, p.bytes
    ));
    out.push_str(&format!(
        ",\"msgs_per_node\":{:.3},\"bytes_per_node\":{:.3},\"peak_live_events\":{}",
        p.msgs_per_node, p.bytes_per_node, p.peak_live_events
    ));
    if include_wall {
        out.push_str(&format!(
            ",\"wall_ms_heap\":{},\"wall_ms_calendar\":{},\"speedup\":{:.2}",
            p.wall_ms_heap,
            p.wall_ms_calendar,
            p.wall_ms_heap as f64 / (p.wall_ms_calendar.max(1)) as f64
        ));
    }
    out.push('}');
    out
}

fn report(points: &[ScalePoint], include_wall: bool) -> String {
    let mut out = String::from("{\"schema\":\"elink-scale/v1\",\"results\":[\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&point_json(p, include_wall));
    }
    out.push_str("\n]}\n");
    out
}

/// The full `BENCH_scale.json` payload (wall-clock and speedup included).
pub fn scale_report_json(points: &[ScalePoint]) -> String {
    report(points, true)
}

/// The determinism view: identical minus every wall-clock-derived field.
/// Two same-seed runs must agree byte-for-byte.
pub fn scale_deterministic_json(points: &[ScalePoint]) -> String {
    report(points, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest fleet, both backends: digests equal (asserted inside
    /// `run_point`), messages O(N)-ish, peak events nonzero, routing lazy.
    #[test]
    fn quick_point_is_deterministic_across_backends() {
        let p = run_point(16);
        assert_eq!(p.n, 256);
        assert!(p.clusters > 1, "field should split the grid");
        assert!(p.messages > 0 && p.peak_live_events > 0);
        // O(N) claim sanity: broadcast-only ELink stays near a small
        // per-node constant (expand + switches), far below N.
        assert!(
            p.msgs_per_node < 64.0,
            "msgs/node {} blew past O(1)-per-node expectations",
            p.msgs_per_node
        );
    }

    #[test]
    fn deterministic_view_is_reproducible_and_wall_free() {
        let a = run_scale(&[8, 16]);
        let b = run_scale(&[8, 16]);
        assert_eq!(scale_deterministic_json(&a), scale_deterministic_json(&b));
        assert!(!scale_deterministic_json(&a).contains("wall_ms"));
        let full = scale_report_json(&a);
        for key in [
            "\"schema\":\"elink-scale/v1\"",
            "\"msgs_per_node\":",
            "\"peak_live_events\":",
            "\"wall_ms_heap\":",
            "\"wall_ms_calendar\":",
            "\"speedup\":",
        ] {
            assert!(full.contains(key), "missing {key}");
        }
    }
}
