//! The standing-query serving bench behind `BENCH_sub.json` (schema
//! `elink-sub/v1`).
//!
//! Three runs share one deployment preset (same topology, features, seed
//! and update stream):
//!
//! 1. **maintenance control** — updates only, no serving. Its wire bill is
//!    the shared churn cost (invalidation climbs, absorption) that both
//!    serving strategies pay identically.
//! 2. **push** — clients register standing subscriptions once; every
//!    subsequent update is served by the incremental repair + delta-push
//!    pipeline.
//! 3. **re-query** — no subscriptions; after every update each would-be
//!    subscriber re-issues a one-shot query for its template (the strategy
//!    a standing query replaces).
//!
//! Strategy cost = total wire messages − control messages, i.e. exactly
//! the serving traffic added on top of churn maintenance. The headline
//! ratio `requery/push` (milli) is the ISSUE acceptance metric (floor
//! 2000 = "at least 2× fewer messages per update"). Push latency
//! percentiles come from the per-client samples recorded at delivery.

use elink_metric::{Absolute, Metric};
use elink_workload::{expected_matches, ServeOptions, WorkloadSim, WorkloadSpec};
use std::sync::Arc;

/// Everything `sub_report` prints and serializes. All fields except
/// `wall_ms` are deterministic for a fixed preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubReport {
    /// Nodes in the deployment.
    pub n_nodes: usize,
    /// Clusters in the deployment.
    pub n_clusters: usize,
    /// Standing subscriptions registered.
    pub n_subscribers: usize,
    /// Background feature updates driven through both strategies.
    pub n_updates: usize,
    /// Subscriptions still live at the end of the push run.
    pub active_subs: usize,
    /// Pushes applied across all clients.
    pub pushes: u64,
    /// Incremental repair descents at watcher roots.
    pub repairs: u64,
    /// Per-cluster contributions reported to coordinators.
    pub contribs: u64,
    /// Push latency percentiles (ticks, nearest-rank over applied pushes).
    pub push_p50: u64,
    /// 90th percentile push latency.
    pub push_p90: u64,
    /// 99th percentile push latency.
    pub push_p99: u64,
    /// Maximum push latency.
    pub push_max: u64,
    /// Serving wire messages of the push strategy (total − control).
    pub push_msgs: u64,
    /// Serving wire messages of the re-query strategy (total − control).
    pub requery_msgs: u64,
    /// Push serving messages per update (milli).
    pub push_per_update_milli: u64,
    /// Re-query serving messages per update (milli).
    pub requery_per_update_milli: u64,
    /// `requery_msgs / push_msgs` in milli — the acceptance ratio.
    pub ratio_milli: u64,
    /// Host wall-clock of the three runs (excluded from determinism).
    pub wall_ms: u64,
}

/// The bench preset: a 256-node terrain deployment, 8 subscribers over the
/// zipf head, 48 slack-exceeding-prone updates. `scale=1` is the committed
/// preset; tests shrink it.
pub fn preset(scale: u32) -> (WorkloadSpec, f64, usize) {
    let mut spec = WorkloadSpec::quick(42);
    spec.n_queries = 0;
    spec.n_updates = 48 / scale as usize;
    spec.update_gap = 24;
    spec.n_subscribers = 8 / scale.min(4) as usize;
    let n_nodes = 256 / scale as usize;
    (spec, 300.0, n_nodes)
}

fn build(spec: &WorkloadSpec, delta: f64, n_nodes: usize) -> WorkloadSim {
    let data = elink_datasets::TerrainDataset::generate(n_nodes, 6, 0.55, 7);
    WorkloadSim::build(
        data.topology().clone(),
        data.features(),
        Arc::new(Absolute),
        delta,
        spec,
        ServeOptions::for_delta(delta),
    )
}

/// Nearest-rank percentile over an ascending slice (0 on empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the three-way comparison for one preset scale.
pub fn run_once(scale: u32) -> SubReport {
    let start = std::time::Instant::now();
    let (spec, delta, n_nodes) = preset(scale);
    let metric: Arc<dyn Metric> = Arc::new(Absolute);

    // 1. Maintenance control: churn only. Schedules are seed-deterministic,
    //    so the update stream is identical across all three runs.
    let control = {
        let mut s = spec.clone();
        s.n_subscribers = 0;
        let mut sim = build(&s, delta, n_nodes);
        let updates = sim.schedule().updates.clone();
        for u in updates {
            sim.inject_update(u.at, u.node, u.feature);
        }
        sim.quiesce();
        sim.sim().costs().total_packets()
    };

    // 2. Push: register subscribers, then drive the same churn through the
    //    incremental repair pipeline. Each update quiesces before the next
    //    so the per-update serving cost is honest (no cross-update
    //    coalescing hides traffic the re-query strategy would also save).
    let (push_total, n_clusters, subs, report_core) = {
        let mut sim = build(&spec, delta, n_nodes);
        let subs = sim.schedule().subscriptions.clone();
        let updates = sim.schedule().updates.clone();
        for s in &subs {
            sim.inject_subscribe(s.at, s.client, s.sid, s.template);
        }
        sim.quiesce();
        for u in updates {
            let at = u.at.max(sim.sim().now());
            sim.inject_update(at, u.node, u.feature);
            sim.quiesce();
        }
        let total = sim.sim().costs().total_packets();
        let templates = sim.schedule().templates.clone();
        let anchors = sim.anchors();
        // Soundness gate: every surviving view must equal brute-force truth
        // over final anchors (fault-free runs reach full coverage).
        let mut active = 0usize;
        let mut lats: Vec<u64> = Vec::new();
        let mut pushes = 0u64;
        for node in sim.sim().nodes() {
            for (sid, c) in node.client_subs() {
                if !c.active {
                    continue;
                }
                active += 1;
                pushes += c.pushes;
                lats.extend_from_slice(&c.latencies);
                let truth =
                    expected_matches(&templates[c.template as usize], &anchors, metric.as_ref());
                assert_eq!(
                    c.view, truth,
                    "push view diverged from ground truth (sid {sid})"
                );
            }
        }
        lats.sort_unstable();
        let repairs = sim.sim().metrics().counter("wl.sub.repair");
        let contribs = sim.sim().metrics().counter("wl.sub.contrib");
        (
            total,
            sim.n_clusters(),
            subs,
            (active, pushes, lats, repairs, contribs),
        )
    };

    // 3. Re-query: the same subscriber set refreshes by one-shot queries
    //    after every update.
    let requery_total = {
        let mut s = spec.clone();
        s.n_subscribers = 0;
        let mut sim = build(&s, delta, n_nodes);
        let updates = sim.schedule().updates.clone();
        let mut qid = 1u64 << 20;
        // Initial answers (the push run's snapshots).
        for s in &subs {
            let at = s.at.max(sim.sim().now());
            sim.inject_query(at, s.client, qid, s.template);
            qid += 1;
        }
        sim.quiesce();
        for u in updates {
            let at = u.at.max(sim.sim().now());
            sim.inject_update(at, u.node, u.feature);
            sim.quiesce();
            for s in &subs {
                let at = sim.sim().now();
                sim.inject_query(at, s.client, qid, s.template);
                qid += 1;
            }
            sim.quiesce();
        }
        sim.sim().costs().total_packets()
    };

    let (active_subs, pushes, lats, repairs, contribs) = report_core;
    let push_msgs = push_total.saturating_sub(control);
    let requery_msgs = requery_total.saturating_sub(control);
    let n_updates = spec.n_updates as u64;
    SubReport {
        n_nodes,
        n_clusters,
        n_subscribers: spec.n_subscribers,
        n_updates: spec.n_updates,
        active_subs,
        pushes,
        repairs,
        contribs,
        push_p50: percentile(&lats, 50),
        push_p90: percentile(&lats, 90),
        push_p99: percentile(&lats, 99),
        push_max: lats.last().copied().unwrap_or(0),
        push_msgs,
        requery_msgs,
        push_per_update_milli: push_msgs * 1000 / n_updates.max(1),
        requery_per_update_milli: requery_msgs * 1000 / n_updates.max(1),
        ratio_milli: requery_msgs * 1000 / push_msgs.max(1),
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

impl SubReport {
    /// Full JSON document (schema `elink-sub/v1`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"elink-sub/v1\",\"n_nodes\":{},\"n_clusters\":{},",
                "\"n_subscribers\":{},\"n_updates\":{},\"active_subs\":{},",
                "\"pushes\":{},\"repairs\":{},\"contribs\":{},",
                "\"push_latency\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
                "\"push_msgs\":{},\"requery_msgs\":{},",
                "\"push_per_update_milli\":{},\"requery_per_update_milli\":{},",
                "\"ratio_milli\":{},\"wall_ms\":{}}}"
            ),
            self.n_nodes,
            self.n_clusters,
            self.n_subscribers,
            self.n_updates,
            self.active_subs,
            self.pushes,
            self.repairs,
            self.contribs,
            self.push_p50,
            self.push_p90,
            self.push_p99,
            self.push_max,
            self.push_msgs,
            self.requery_msgs,
            self.push_per_update_milli,
            self.requery_per_update_milli,
            self.ratio_milli,
            self.wall_ms
        )
    }

    /// The deterministic view used by `--check`: everything but `wall_ms`.
    pub fn deterministic_json(&self) -> String {
        let mut j = self.to_json();
        if let Some(pos) = j.rfind(",\"wall_ms\"") {
            j.truncate(pos);
            j.push('}');
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_preset_is_deterministic_and_beats_requery() {
        let a = run_once(4);
        let b = run_once(4);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(a.pushes > 0, "no pushes delivered");
        assert!(a.repairs > 0, "no incremental repairs ran");
        assert!(
            a.ratio_milli >= 2000,
            "push must beat re-query 2x even at mini scale: ratio_milli={}",
            a.ratio_milli
        );
    }

    #[test]
    fn report_is_schema_tagged_and_balanced() {
        let r = run_once(4);
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"elink-sub/v1\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(r.deterministic_json().ends_with('}'));
        assert!(!r.deterministic_json().contains("wall_ms"));
    }
}
