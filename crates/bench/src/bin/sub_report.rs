//! Runs the standing-query serving bench and writes `BENCH_sub.json`
//! (schema `elink-sub/v1`).
//!
//! ```text
//! sub_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default `BENCH_sub.json`).
//! * `--check` — run the bench twice and fail (exit 1) unless the
//!   deterministic views (everything except `wall_ms`) are byte-identical.
//!   This is the CI smoke gate for the subscription engine.
//!
//! The bench compares the incremental push pipeline against per-update
//! one-shot re-query over the same deployment and churn stream; the ISSUE
//! acceptance floor is `ratio_milli >= 2000` (at least 2× fewer serving
//! messages per update).

use elink_bench::subbench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_sub.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sub_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let report = subbench::run_once(1);
    println!(
        "sub n={} clusters={} subscribers={} updates={} wall={}ms",
        report.n_nodes, report.n_clusters, report.n_subscribers, report.n_updates, report.wall_ms
    );
    println!(
        "  pushes={} repairs={} contribs={} | push latency p50={} p90={} p99={} max={}",
        report.pushes,
        report.repairs,
        report.contribs,
        report.push_p50,
        report.push_p90,
        report.push_p99,
        report.push_max
    );
    println!(
        "  serving msgs: push={} requery={} | per update: push={}.{:03} requery={}.{:03} | ratio={}.{:03}x",
        report.push_msgs,
        report.requery_msgs,
        report.push_per_update_milli / 1000,
        report.push_per_update_milli % 1000,
        report.requery_per_update_milli / 1000,
        report.requery_per_update_milli % 1000,
        report.ratio_milli / 1000,
        report.ratio_milli % 1000
    );

    if report.active_subs < report.n_subscribers {
        eprintln!(
            "ACCEPTANCE FAILURE: only {}/{} subscriptions survived a fault-free run",
            report.active_subs, report.n_subscribers
        );
        std::process::exit(1);
    }
    if report.ratio_milli < 2000 {
        eprintln!(
            "ACCEPTANCE FAILURE: push/requery ratio {}.{:03}x below the 2x floor",
            report.ratio_milli / 1000,
            report.ratio_milli % 1000
        );
        std::process::exit(1);
    }

    if check {
        eprintln!("--check: re-running the bench to verify determinism...");
        let again = subbench::run_once(1);
        let a = report.deterministic_json();
        let b = again.deterministic_json();
        if a != b {
            eprintln!("DETERMINISM FAILURE: deterministic views differ across same-seed runs");
            eprintln!("  run 1: {a}");
            eprintln!("  run 2: {b}");
            std::process::exit(1);
        }
        eprintln!("--check: deterministic views byte-identical across two runs");
    }

    let json = report.to_json();
    if json.matches('{').count() != json.matches('}').count() {
        eprintln!("MALFORMED REPORT: unbalanced braces in {json}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
