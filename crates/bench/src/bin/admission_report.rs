//! Runs the load-admission A/B sweep and writes `BENCH_admission.json`
//! (schema `elink-admission/v1`).
//!
//! ```text
//! admission_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default
//!   `BENCH_admission.json`).
//! * `--check` — run the sweep twice and fail (exit 1) unless the
//!   documents are byte-identical. The admission thresholds are pure
//!   integer arithmetic over the flow-table backlog, so same-seed runs
//!   must replay exactly.
//!
//! Independent of `--check`, the run fails (exit 1) unless the A/B
//! contract holds past the saturation knee of the cap-64 sweep: admission
//! on must bound the served p99 (no convex blow-up segment, strictly
//! below admission off at the heaviest load), lose no work (shed queries
//! complete explicitly), and keep exact-answer goodput at or above the
//! admission-off baseline (see
//! `elink_bench::admission::admission_violation`).

use elink_bench::admission::{admission_report_json, admission_violation, run_sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_admission.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: admission_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let points = run_sweep();
    for p in &points {
        println!(
            "gap={:<3} admission={:<5} done={:<4} adm={:<4} deg={:<3} shed={:<3} exact={:<4} served_p50={:<5} served_p99={:<6} goodput={:<4}/ktick queued={}",
            p.mean_gap,
            p.admission,
            p.done,
            p.admitted,
            p.degraded,
            p.shed,
            p.exact,
            p.served_p50,
            p.served_p99,
            p.goodput_milli,
            p.queued_ms,
        );
    }

    if let Some(violation) = admission_violation(&points) {
        eprintln!("ADMISSION FAILURE: {violation}");
        std::process::exit(1);
    }

    if check {
        eprintln!("--check: re-running the sweep to verify determinism...");
        let again = run_sweep();
        let a = admission_report_json(&points);
        let b = admission_report_json(&again);
        if a != b {
            eprintln!("DETERMINISM FAILURE: admission sweep differs across same-seed runs");
            for (la, lb) in a.lines().zip(b.lines()) {
                if la != lb {
                    eprintln!("  run 1: {la}");
                    eprintln!("  run 2: {lb}");
                }
            }
            std::process::exit(1);
        }
        eprintln!("--check: documents byte-identical across two runs");
    }

    let json = admission_report_json(&points);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
