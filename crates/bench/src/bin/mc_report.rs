//! Runs the model-checking gate suite and writes `BENCH_mc.json` (schema
//! `elink-mc/v1`).
//!
//! ```text
//! mc_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default `BENCH_mc.json`).
//! * `--check` — run the whole suite twice and fail (exit 1) unless the
//!   deterministic reports are byte-identical: exploration must visit the
//!   same states in the same order on every run.
//!
//! Independent of `--check`, the run fails (exit 1) when any cell:
//!
//! * finds a predicate violation it did not expect, or misses one it did —
//!   and for every expected violation, when the compiled counterexample
//!   does not reproduce under the production engine;
//! * fails to explore exhaustively within its budgets;
//! * breaches the hard explored-state ceiling (a state-space regression:
//!   canonicalization got weaker or the protocols grew nondeterminism);
//! * collectively breaches the wall-time ceiling.
//!
//! The suite is the small-topology catalog from `elink-mc`: 3-node
//! explicit-mode growth (fault-free, then one message drop — expected to
//! deadlock without ARQ and to replay) and the 4-node serving query
//! (fault-free; one crash; one crash plus one drop; contended over a
//! capacity-1 fair-share link, with the flow table in the fingerprint).

use std::time::Instant;

use elink_mc::scenarios::{elink_growth, serving};
use elink_mc::{CheckOutcome, ExploreReport, FaultBudget, McConfig, Strategy};

/// Hard ceiling on explored states per cell. The whole suite currently
/// explores well under 1k states per cell; a breach means fingerprint
/// merging regressed or a protocol grew schedule-visible nondeterminism.
const STATE_CEILING: u64 = 50_000;

/// Hard ceiling on suite wall time, seconds (per pass; `--check` runs two
/// passes). Generous: one pass is sub-second in release builds.
const WALL_CEILING_SECS: u64 = 120;

struct CellResult {
    name: &'static str,
    explored: u64,
    pruned: u64,
    quiescent: u64,
    max_depth: usize,
    exhaustive: bool,
    /// Name of the violated predicate, if any.
    violation: Option<String>,
    /// Whether this cell is *supposed* to violate (known-bad config).
    expect_violation: bool,
    /// For violating cells: did the counterexample replay reproduce?
    replay_reproduced: Option<bool>,
}

impl CellResult {
    fn from_outcome<M>(
        name: &'static str,
        expect_violation: bool,
        outcome: &CheckOutcome<M>,
    ) -> CellResult {
        let r: &ExploreReport = &outcome.report;
        CellResult {
            name,
            explored: r.explored,
            pruned: r.pruned,
            quiescent: r.quiescent,
            max_depth: r.max_depth_seen,
            exhaustive: r.exhaustive(),
            violation: r.violation.as_ref().map(|v| v.predicate.to_string()),
            expect_violation,
            replay_reproduced: outcome.counterexample.as_ref().map(|(_, rp)| rp.reproduced),
        }
    }
}

fn budget(drops: u32, dups: u32, crashes: u32) -> McConfig {
    let mut config = McConfig::fault_free(2);
    config.faults = FaultBudget {
        max_drops: drops,
        max_duplicates: dups,
        max_crashes: crashes,
    };
    config.max_depth = 512;
    config.max_states = 1_000_000;
    config
}

fn run_suite() -> Vec<CellResult> {
    let mut cells = Vec::new();

    let growth_preds = elink_growth::predicates(&[]);
    let out = elink_growth::three_node().check(&budget(0, 0, 0), &growth_preds, Strategy::Bfs);
    cells.push(CellResult::from_outcome("growth-3/fault-free", false, &out));

    // One lost message with no ARQ deadlocks the explicit ack waves — the
    // cell pins both the finding and the counterexample replay machinery.
    let out = elink_growth::three_node().check(&budget(1, 0, 0), &growth_preds, Strategy::Bfs);
    cells.push(CellResult::from_outcome("growth-3/1-drop", true, &out));

    let serving_preds = serving::predicates();
    let out = serving::four_node().check(&budget(0, 0, 0), &serving_preds, Strategy::Bfs);
    cells.push(CellResult::from_outcome(
        "serving-4/fault-free",
        false,
        &out,
    ));

    let out = serving::four_node().check(&budget(0, 0, 1), &serving_preds, Strategy::Bfs);
    cells.push(CellResult::from_outcome("serving-4/1-crash", false, &out));

    let out = serving::four_node().check(&budget(1, 0, 1), &serving_preds, Strategy::Bfs);
    cells.push(CellResult::from_outcome(
        "serving-4/1-crash+1-drop",
        false,
        &out,
    ));

    // Contended serving over a capacity-1 fair-share link: the flow table
    // is part of the explored state (snapshotted into fingerprints), so
    // this cell exhausts every interleaving of queued transfers and pins
    // that coverage honesty survives link-level backlog reordering.
    let out = serving::four_node_contended().check(&budget(0, 0, 0), &serving_preds, Strategy::Bfs);
    cells.push(CellResult::from_outcome(
        "serving-4/contended-cap1",
        false,
        &out,
    ));

    cells
}

/// Deterministic report JSON: stable key order, no floats, no timing.
fn deterministic_json(cells: &[CellResult]) -> String {
    let mut out = String::from("{\"schema\":\"elink-mc/v1\",\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"explored\":{},\"pruned\":{},\"quiescent\":{},\"max_depth\":{},\"exhaustive\":{},\"violation\":{},\"expect_violation\":{},\"replay_reproduced\":{}}}",
            c.name,
            c.explored,
            c.pruned,
            c.quiescent,
            c.max_depth,
            c.exhaustive,
            match &c.violation {
                Some(p) => format!("\"{p}\""),
                None => "null".to_string(),
            },
            c.expect_violation,
            match c.replay_reproduced {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
        ));
    }
    out.push_str("]}");
    out
}

/// Applies the gate to one pass; returns the failure messages.
fn gate(cells: &[CellResult], elapsed_secs: u64) -> Vec<String> {
    let mut failures = Vec::new();
    for c in cells {
        if !c.exhaustive {
            failures.push(format!("{}: exploration was not exhaustive", c.name));
        }
        if c.explored > STATE_CEILING {
            failures.push(format!(
                "{}: explored {} states, ceiling is {STATE_CEILING}",
                c.name, c.explored
            ));
        }
        match (&c.violation, c.expect_violation) {
            (Some(p), false) => {
                failures.push(format!("{}: unexpected violation of '{p}'", c.name));
            }
            (None, true) => {
                failures.push(format!(
                    "{}: expected a violation (known-bad config) but found none",
                    c.name
                ));
            }
            (Some(_), true) => {
                if c.replay_reproduced != Some(true) {
                    failures.push(format!(
                        "{}: counterexample did not reproduce under the engine",
                        c.name
                    ));
                }
            }
            (None, false) => {}
        }
    }
    if elapsed_secs > WALL_CEILING_SECS {
        failures.push(format!(
            "suite took {elapsed_secs}s, wall ceiling is {WALL_CEILING_SECS}s"
        ));
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_mc.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: mc_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let started = Instant::now();
    let cells = run_suite();
    let elapsed = started.elapsed().as_secs();
    for c in &cells {
        println!(
            "  {:<26} explored={:<6} pruned={:<5} quiescent={:<4} depth={:<3} exhaustive={} violation={}{}",
            c.name,
            c.explored,
            c.pruned,
            c.quiescent,
            c.max_depth,
            c.exhaustive,
            c.violation.as_deref().unwrap_or("none"),
            match c.replay_reproduced {
                Some(true) => " (replayed)",
                Some(false) => " (REPLAY FAILED)",
                None => "",
            },
        );
    }

    let failures = gate(&cells, elapsed);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }

    if check {
        eprintln!("--check: re-running the suite to verify determinism...");
        let again = run_suite();
        let a = deterministic_json(&cells);
        let b = deterministic_json(&again);
        if a != b {
            eprintln!("DETERMINISM FAILURE: mc reports differ across runs");
            eprintln!("  run 1: {a}");
            eprintln!("  run 2: {b}");
            std::process::exit(1);
        }
        eprintln!("--check: reports byte-identical across two runs");
    }

    let json = deterministic_json(&cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
