//! Runs the quick benchmark presets and writes `BENCH_elink.json`.
//!
//! ```text
//! bench_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default `BENCH_elink.json`).
//! * `--check` — run the whole suite twice and fail (exit 1) unless the
//!   deterministic views (everything except `wall_ms`) are byte-identical.
//!   This is the CI smoke gate for the observability layer.

use elink_bench::report::{deterministic_json, report_json, run_benches};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_elink.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let results = run_benches();
    for r in &results {
        let phases = r.metrics.phases().count();
        println!(
            "{:<24} n={:<4} wall={}ms sim_time={} messages={} bytes={} phases={}",
            r.bench, r.n, r.wall_ms, r.sim_time, r.messages, r.bytes, phases
        );
    }

    if check {
        eprintln!("--check: re-running the suite to verify determinism...");
        let again = run_benches();
        let a = deterministic_json(&results);
        let b = deterministic_json(&again);
        if a != b {
            eprintln!("DETERMINISM FAILURE: metric fields differ across same-seed runs");
            for (la, lb) in a.lines().zip(b.lines()) {
                if la != lb {
                    eprintln!("  run 1: {la}");
                    eprintln!("  run 2: {lb}");
                }
            }
            std::process::exit(1);
        }
        eprintln!("--check: deterministic views byte-identical across two runs");
    }

    let json = report_json(&results);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
