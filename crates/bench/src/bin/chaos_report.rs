//! Runs the seeded fault campaign and writes `BENCH_chaos.json` (schema
//! `elink-chaos/v3`).
//!
//! ```text
//! chaos_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default `BENCH_chaos.json`).
//! * `--check` — run the campaign twice and fail (exit 1) unless the
//!   reports are byte-identical. This is the CI smoke gate for the
//!   recovery layer: same-seed chaos runs must be fully deterministic.
//!
//! Independent of `--check`, the run fails (exit 1) if any cell breaks
//! liveness (a surviving initiator's query wedged) or soundness (an answer
//! disagreed with ground truth), or if the pure-loss cells degraded any
//! answer — loss alone must be invisible behind the ARQ sublayer. The
//! standing-subscription cells (leader crash mid-subscription) must each
//! observe a real failover, keep at least one subscription alive, and
//! report zero push-soundness violations.

use elink_metric::{Absolute, Metric};
use elink_workload::{default_sub_grid, run_campaign, run_sub_cell, ChaosReport, FaultSpec};
use std::sync::Arc;

/// The benchmark campaign: a 192-node terrain deployment, 60 queries per
/// cell, over drop ∈ {0, 250}‰ × crash ∈ {0, 150}‰ plus one partition
/// cell and one composed capacity × loss × crash cell (congestion pricing,
/// drop faults, crashed leaders and the load-admission ladder all active
/// at once) — the fault classes the recovery layer must survive, kept to
/// six cells so the double-run `--check` stays in CI budget.
fn grid() -> Vec<FaultSpec> {
    vec![
        FaultSpec {
            drop_milli: 0,
            crash_milli: 0,
            partition: None,
            capacity: None,
        },
        FaultSpec {
            drop_milli: 250,
            crash_milli: 0,
            partition: None,
            capacity: None,
        },
        FaultSpec {
            drop_milli: 0,
            crash_milli: 150,
            partition: None,
            capacity: None,
        },
        FaultSpec {
            drop_milli: 250,
            crash_milli: 150,
            partition: None,
            capacity: None,
        },
        FaultSpec {
            drop_milli: 100,
            crash_milli: 0,
            partition: Some((400, 900)),
            capacity: None,
        },
        FaultSpec {
            drop_milli: 100,
            crash_milli: 150,
            partition: None,
            capacity: Some(64),
        },
    ]
}

fn run_once() -> ChaosReport {
    let data = elink_datasets::TerrainDataset::generate(192, 6, 0.55, 7);
    let metric: Arc<dyn Metric> = Arc::new(Absolute);
    let mut report = run_campaign(
        data.topology(),
        &data.features(),
        &metric,
        300.0,
        60,
        42,
        &grid(),
    );
    report.sub_cells = default_sub_grid()
        .into_iter()
        .map(|fault| {
            run_sub_cell(data.topology(), &data.features(), &metric, 300.0, 42, fault)
                .expect("campaign fixture offers no isolatable (non-relay) coordinator victim")
        })
        .collect();
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_chaos.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let report = run_once();
    println!(
        "chaos n={} queries/cell={} seed={} cells={}",
        report.n_nodes,
        report.n_queries,
        report.seed,
        report.cells.len()
    );
    for c in &report.cells {
        println!(
            "  drop={}m crash={}m part={} cap={} | done={}/{} exact={} partial={} cov_mean={}m | adm={} deg={} shed={} queued={} | retx={} timeouts={} failovers={} violations={}",
            c.fault.drop_milli,
            c.fault.crash_milli,
            c.fault.partition.is_some(),
            c.fault.capacity.unwrap_or(0),
            c.done,
            c.expected,
            c.exact,
            c.partial,
            c.coverage_mean_milli,
            c.admitted,
            c.degraded,
            c.shed,
            c.queued_ms,
            c.retx,
            c.timeouts,
            c.failovers,
            c.violations
        );
    }
    for c in &report.sub_cells {
        println!(
            "  sub drop={}m cap={} crash_at={} leader={} | reg={} adm={} active={} ended={} exact={} subset={} | pushes={} repairs={} resyncs={} gaveup={} failovers={} queued={} violations={}",
            c.fault.drop_milli,
            c.fault.capacity.unwrap_or(0),
            c.crash_at,
            c.crashed_leader,
            c.registered,
            c.admitted,
            c.active,
            c.ended,
            c.exact,
            c.subset,
            c.pushes,
            c.repairs,
            c.resyncs,
            c.contrib_gaveup,
            c.failovers,
            c.queued_ms,
            c.violations
        );
    }

    if !report.all_sound() {
        eprintln!("ACCEPTANCE FAILURE: a cell broke liveness or soundness");
        std::process::exit(1);
    }
    for c in &report.cells {
        // Capacity cells are exempt from the loss-invisibility gate: the
        // load-admission ladder *intends* to degrade/shed under congestion.
        if c.fault.crash_milli == 0
            && c.fault.partition.is_none()
            && c.fault.capacity.is_none()
            && c.partial > 0
        {
            eprintln!(
                "ACCEPTANCE FAILURE: pure loss (drop={}m) degraded {} answers — ARQ must absorb loss completely",
                c.fault.drop_milli, c.partial
            );
            std::process::exit(1);
        }
        if c.fault.crash_milli > 0 && c.failovers == 0 {
            eprintln!(
                "ACCEPTANCE FAILURE: crash cell (crash={}m) performed no failover",
                c.fault.crash_milli
            );
            std::process::exit(1);
        }
    }
    for c in &report.sub_cells {
        if c.failovers == 0 || c.active == 0 || c.pushes == 0 {
            eprintln!(
                "ACCEPTANCE FAILURE: sub cell (drop={}m) broke the failover serving contract (failovers={} active={} pushes={})",
                c.fault.drop_milli, c.failovers, c.active, c.pushes
            );
            std::process::exit(1);
        }
    }

    if check {
        eprintln!("--check: re-running the campaign to verify determinism...");
        let again = run_once();
        let a = report.deterministic_json();
        let b = again.deterministic_json();
        if a != b {
            eprintln!("DETERMINISM FAILURE: chaos reports differ across same-seed runs");
            eprintln!("  run 1: {a}");
            eprintln!("  run 2: {b}");
            std::process::exit(1);
        }
        eprintln!("--check: reports byte-identical across two runs");
    }

    let json = report.deterministic_json();
    if json.matches('{').count() != json.matches('}').count() {
        eprintln!("MALFORMED REPORT: unbalanced braces in {json}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
