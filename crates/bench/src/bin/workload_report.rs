//! Runs the concurrent query-serving workload preset and writes
//! `BENCH_workload.json` (schema `elink-workload/v1`).
//!
//! ```text
//! workload_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default
//!   `BENCH_workload.json`).
//! * `--check` — run the workload twice and fail (exit 1) unless the
//!   deterministic views (everything except `wall_ms`) are byte-identical.
//!   This is the CI smoke gate for the serving layer.
//!
//! The preset drives a mixed range/path stream of 120 queries against a
//! 1024-node terrain deployment with background feature updates — the
//! ISSUE acceptance floor (≥100 queries, 1024 nodes, non-zero cache
//! hit-rate).

use elink_metric::Absolute;
use elink_workload::{ServeOptions, SloReport, WorkloadSim, WorkloadSpec};
use std::sync::Arc;
use std::time::Instant;

/// The benchmark preset: 1024 nodes, 120 mixed queries, open-loop
/// arrivals, background updates.
fn preset() -> (WorkloadSpec, f64) {
    let mut spec = WorkloadSpec::quick(42);
    spec.n_queries = 120;
    spec.n_updates = 40;
    (spec, 300.0)
}

fn run_once() -> SloReport {
    let (spec, delta) = preset();
    let data = elink_datasets::TerrainDataset::generate(1024, 6, 0.55, 7);
    let start = Instant::now();
    let sim = WorkloadSim::build(
        data.topology().clone(),
        data.features(),
        Arc::new(Absolute),
        delta,
        &spec,
        ServeOptions::for_delta(delta),
    );
    let run = sim.run_concurrent();
    let wall_ms = start.elapsed().as_millis() as u64;
    SloReport::from_run(&run, wall_ms)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_workload.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: workload_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let report = run_once();
    println!(
        "workload n={} clusters={} queries={}/{} wall={}ms sim_ticks={}",
        report.n_nodes,
        report.n_clusters,
        report.done,
        report.submitted,
        report.wall_ms,
        report.sim_ticks
    );
    println!(
        "  latency p50={} p90={} p99={} max={} | throughput={}.{:03}/tick",
        report.latency.p50,
        report.latency.p90,
        report.latency.p99,
        report.latency.max,
        report.throughput_milli / 1000,
        report.throughput_milli % 1000
    );
    println!(
        "  cache hits={} misses={} hit_rate={}.{:03} evictions={} invalidations={}",
        report.cache_hits,
        report.cache_misses,
        report.hit_rate_milli / 1000,
        report.hit_rate_milli % 1000,
        report.cache_evictions,
        report.invalidations
    );
    println!(
        "  batching riders={} | msgs/query={}.{:03} total_msgs={} attributed_cost={}",
        report.batch_riders,
        report.msgs_per_query_milli / 1000,
        report.msgs_per_query_milli % 1000,
        report.total_msgs,
        report.attributed_cost
    );

    if report.done < 100 {
        eprintln!(
            "ACCEPTANCE FAILURE: only {} queries completed (floor: 100)",
            report.done
        );
        std::process::exit(1);
    }
    if report.cache_hits == 0 {
        eprintln!("ACCEPTANCE FAILURE: cache hit-rate is zero");
        std::process::exit(1);
    }

    if check {
        eprintln!("--check: re-running the workload to verify determinism...");
        let again = run_once();
        let a = report.deterministic_json();
        let b = again.deterministic_json();
        if a != b {
            eprintln!("DETERMINISM FAILURE: deterministic views differ across same-seed runs");
            eprintln!("  run 1: {a}");
            eprintln!("  run 2: {b}");
            std::process::exit(1);
        }
        eprintln!("--check: deterministic views byte-identical across two runs");
    }

    let json = report.to_json();
    if json.matches('{').count() != json.matches('}').count() {
        eprintln!("MALFORMED REPORT: unbalanced braces in {json}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
