//! Runs the 1k→64k scaling bench and writes `BENCH_scale.json`.
//!
//! ```text
//! scale_report [--check] [--quick] [--out PATH]
//! ```
//!
//! * `--quick` — run only the 1k/4k fleets (CI-friendly).
//! * `--check` — run the quick set twice and fail (exit 1) unless the
//!   deterministic views (everything except wall-clock fields) are
//!   byte-identical. Implies `--quick`.
//! * `--out PATH` — where to write the report (default `BENCH_scale.json`).
//!
//! Every fleet size runs under both scheduler backends; `run_point` panics
//! if their digests diverge, so a clean exit is itself the Heap≡Calendar
//! determinism proof at every size in the report.

use elink_bench::scale::{
    run_scale, scale_deterministic_json, scale_report_json, FULL_SIDES, QUICK_SIDES,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut quick = false;
    let mut out_path = String::from("BENCH_scale.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                check = true;
                quick = true;
            }
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: scale_report [--check] [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let sides: &[usize] = if quick { &QUICK_SIDES } else { &FULL_SIDES };
    let points = run_scale(sides);
    for p in &points {
        println!(
            "n={:<6} clusters={:<5} msgs/node={:<8.2} bytes/node={:<9.2} peak_events={:<7} heap={}ms calendar={}ms ({:.2}x)",
            p.n,
            p.clusters,
            p.msgs_per_node,
            p.bytes_per_node,
            p.peak_live_events,
            p.wall_ms_heap,
            p.wall_ms_calendar,
            p.wall_ms_heap as f64 / p.wall_ms_calendar.max(1) as f64
        );
    }

    if check {
        eprintln!("--check: re-running the quick set to verify determinism...");
        let again = run_scale(sides);
        let a = scale_deterministic_json(&points);
        let b = scale_deterministic_json(&again);
        if a != b {
            eprintln!("DETERMINISM FAILURE: scale metrics differ across same-seed runs");
            for (la, lb) in a.lines().zip(b.lines()) {
                if la != lb {
                    eprintln!("  run 1: {la}");
                    eprintln!("  run 2: {lb}");
                }
            }
            std::process::exit(1);
        }
        eprintln!("--check: deterministic views byte-identical across two runs");
    }

    let json = scale_report_json(&points);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
