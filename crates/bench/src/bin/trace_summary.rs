//! Renders a `JsonlTrace` event log as per-node send/deliver/drop tables.
//!
//! ```text
//! trace_summary FILE.jsonl     # summarize an existing trace
//! trace_summary --demo         # run a small lossy flood and summarize it
//! ```
//!
//! The input is the JSON Lines format emitted by
//! [`elink_netsim::JsonlTrace`]: one object per line with `t`, `ev`
//! (`send`/`deliver`/`drop`/`timer`) and the event's node fields. Events
//! carrying the optional `qid` field (query-tagged traffic from the
//! workload layer) additionally produce a per-query breakdown; traces
//! without `qid` print the per-node tables exactly as before.

use elink_netsim::{Ctx, JsonlTrace, LossyLink, Protocol, SimNetwork, Simulator};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Per-node event tallies extracted from a trace. `sends` counts first
/// transmissions only; ARQ retransmissions (send lines carrying the
/// `retx` marker) land in `retx` so reliability overhead never inflates a
/// node's apparent protocol traffic.
#[derive(Default, Clone, Copy)]
struct NodeRow {
    sends: u64,
    retx: u64,
    delivers: u64,
    drops: u64,
    /// Load-admission refusals (`reason:"shed"` drops): overload made
    /// visible per node, never folded into wire `drops`.
    shed: u64,
    timers: u64,
}

/// Extracts `"key":<digits>` from one JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key":"<value>"` from one JSONL line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let idx = line.find(&pat)? + pat.len();
    let rest = &line[idx..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Per-query event tallies for `qid`-tagged events. `sends` counts first
/// transmissions only; ARQ retransmissions (send lines carrying the
/// `retx` marker) are tallied separately so a lossy run's per-query
/// reliability overhead is visible at a glance.
#[derive(Default, Clone, Copy)]
struct QueryRow {
    sends: u64,
    retx: u64,
    delivers: u64,
    drops: u64,
    /// Load-admission refusals (`reason:"shed"` drops), kept out of wire
    /// `drops`: a shed query never transmitted anything.
    shed: u64,
    first_t: u64,
    last_t: u64,
}

/// Tallies `qid`-tagged events per query, tracking the event-time span.
/// Retransmission sends *without* a `qid` (ARQ copies whose attribution
/// was lost) are folded into the second return value rather than silently
/// dropped — rendered as an explicit `retx` row so contention-induced
/// retries stay visible in the per-query breakdown.
fn summarize_queries(text: &str) -> (BTreeMap<u64, QueryRow>, u64) {
    let mut rows: BTreeMap<u64, QueryRow> = BTreeMap::new();
    let mut untagged_retx = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Some(qid) = field_u64(line, "qid") else {
            if field_str(line, "ev") == Some("send") && field_u64(line, "retx") == Some(1) {
                untagged_retx += 1;
            }
            continue;
        };
        let row = rows.entry(qid).or_insert(QueryRow {
            first_t: u64::MAX,
            ..QueryRow::default()
        });
        match field_str(line, "ev") {
            Some("send") => {
                if field_u64(line, "retx") == Some(1) {
                    row.retx += 1;
                } else {
                    row.sends += 1;
                }
            }
            Some("deliver") => row.delivers += 1,
            Some("drop") => {
                if field_str(line, "reason") == Some("shed") {
                    row.shed += 1;
                } else {
                    row.drops += 1;
                }
            }
            _ => continue,
        }
        if let Some(t) = field_u64(line, "t") {
            row.first_t = row.first_t.min(t);
            row.last_t = row.last_t.max(t);
        }
    }
    (rows, untagged_retx)
}

/// Folds the per-query rows into per-serving-kind totals
/// (`oneshot`/`push`/`repair`/`control`, via [`elink_netsim::qid_kind`]'s
/// namespace bits) so a standing-query trace shows at a glance how much
/// traffic each pipeline produced.
fn summarize_kinds(rows: &BTreeMap<u64, QueryRow>) -> BTreeMap<&'static str, QueryRow> {
    let mut kinds: BTreeMap<&'static str, QueryRow> = BTreeMap::new();
    for (&qid, r) in rows {
        let k = kinds
            .entry(elink_netsim::qid_kind(qid))
            .or_insert(QueryRow {
                first_t: u64::MAX,
                ..QueryRow::default()
            });
        k.sends += r.sends;
        k.retx += r.retx;
        k.delivers += r.delivers;
        k.drops += r.drops;
        k.shed += r.shed;
        k.first_t = k.first_t.min(r.first_t);
        k.last_t = k.last_t.max(r.last_t);
    }
    kinds
}

fn render_kinds(kinds: &BTreeMap<&'static str, QueryRow>) {
    if kinds.is_empty() {
        return;
    }
    println!();
    println!(
        "{:>8} {:>8} {:>7} {:>10} {:>7} {:>5} {:>8}",
        "kind", "sends", "retx", "delivers", "drops", "shed", "span"
    );
    for (kind, r) in kinds {
        let span = if r.first_t == u64::MAX {
            0
        } else {
            r.last_t - r.first_t
        };
        println!(
            "{:>8} {:>8} {:>7} {:>10} {:>7} {:>5} {:>8}",
            kind, r.sends, r.retx, r.delivers, r.drops, r.shed, span
        );
    }
}

fn render_queries(rows: &BTreeMap<u64, QueryRow>, untagged_retx: u64) {
    if rows.is_empty() && untagged_retx == 0 {
        return;
    }
    println!();
    println!(
        "{:>7} {:>8} {:>7} {:>10} {:>7} {:>5} {:>8}",
        "query", "sends", "retx", "delivers", "drops", "shed", "span"
    );
    for (qid, r) in rows {
        let span = if r.first_t == u64::MAX {
            0
        } else {
            r.last_t - r.first_t
        };
        println!(
            "{:>7} {:>8} {:>7} {:>10} {:>7} {:>5} {:>8}",
            qid, r.sends, r.retx, r.delivers, r.drops, r.shed, span
        );
    }
    if untagged_retx > 0 {
        // Retransmissions whose query attribution was lost: an explicit
        // row, never folded into any query's (or any kind's) sends.
        println!(
            "{:>7} {:>8} {:>7} {:>10} {:>7} {:>5} {:>8}",
            "retx", 0, untagged_retx, 0, 0, 0, 0
        );
    }
    eprintln!("{} tagged queries", rows.len());
}

/// Tallies a trace: sends charged to the origin, delivers to the receiver,
/// drops to the origin, timers to the firing node.
fn summarize(text: &str) -> (Vec<NodeRow>, u64, u64) {
    fn at(rows: &mut Vec<NodeRow>, node: u64) -> &mut NodeRow {
        let node = node as usize;
        if rows.len() <= node {
            rows.resize(node + 1, NodeRow::default());
        }
        &mut rows[node]
    }
    let mut rows: Vec<NodeRow> = Vec::new();
    let (mut total, mut bad) = (0u64, 0u64);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        total += 1;
        let ev = field_str(line, "ev");
        let ok = match ev {
            Some("send") => field_u64(line, "from")
                .map(|f| {
                    let row = at(&mut rows, f);
                    if field_u64(line, "retx") == Some(1) {
                        row.retx += 1;
                    } else {
                        row.sends += 1;
                    }
                })
                .is_some(),
            Some("deliver") => field_u64(line, "to")
                .map(|t| at(&mut rows, t).delivers += 1)
                .is_some(),
            Some("drop") => field_u64(line, "from")
                .map(|f| {
                    let row = at(&mut rows, f);
                    if field_str(line, "reason") == Some("shed") {
                        row.shed += 1;
                    } else {
                        row.drops += 1;
                    }
                })
                .is_some(),
            Some("timer") => field_u64(line, "node")
                .map(|n| at(&mut rows, n).timers += 1)
                .is_some(),
            _ => false,
        };
        if !ok {
            bad += 1;
        }
    }
    (rows, total, bad)
}

fn render(rows: &[NodeRow], total: u64, bad: u64) {
    println!(
        "{:>5} {:>8} {:>7} {:>10} {:>7} {:>5} {:>7}",
        "node", "sends", "retx", "delivers", "drops", "shed", "timers"
    );
    let mut sum = NodeRow::default();
    for (node, r) in rows.iter().enumerate() {
        if r.sends + r.retx + r.delivers + r.drops + r.shed + r.timers == 0 {
            continue;
        }
        println!(
            "{:>5} {:>8} {:>7} {:>10} {:>7} {:>5} {:>7}",
            node, r.sends, r.retx, r.delivers, r.drops, r.shed, r.timers
        );
        sum.sends += r.sends;
        sum.retx += r.retx;
        sum.delivers += r.delivers;
        sum.drops += r.drops;
        sum.shed += r.shed;
        sum.timers += r.timers;
    }
    println!(
        "{:>5} {:>8} {:>7} {:>10} {:>7} {:>5} {:>7}",
        "total", sum.sends, sum.retx, sum.delivers, sum.drops, sum.shed, sum.timers
    );
    eprintln!("{total} events ({bad} unparseable)");
}

/// A one-shot flood: node 0 broadcasts, every node rebroadcasts once.
struct Flood {
    seen: bool,
}

impl Protocol for Flood {
    type Msg = u8;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
        if ctx.id() == 0 {
            self.seen = true;
            ctx.broadcast_neighbors(&0u8, "flood", 1);
        }
    }
    fn on_message(&mut self, _from: usize, msg: u8, ctx: &mut Ctx<'_, u8>) {
        if !self.seen {
            self.seen = true;
            ctx.broadcast_neighbors(&msg, "flood", 1);
        }
    }
}

/// Runs a lossy flood over a 4×4 grid with a `JsonlTrace` attached and
/// returns the captured log.
fn demo_trace() -> String {
    let topo = elink_topology::Topology::grid(4, 4);
    let n = topo.n();
    let nodes: Vec<Flood> = (0..n).map(|_| Flood { seen: false }).collect();
    let link = LossyLink::new(1, 2).with_drop_prob(0.15);
    let sink = Arc::new(Mutex::new(JsonlTrace::new(Vec::new())));
    let mut sim = Simulator::new(SimNetwork::new(topo), link, 42, nodes);
    sim.set_trace(Arc::clone(&sink));
    sim.run_to_completion();
    let log = sink.lock().unwrap().writer().clone();
    String::from_utf8(log).expect("trace output is UTF-8")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first().map(String::as_str) {
        Some("--demo") => {
            eprintln!("demo: lossy flood on a 4x4 grid (seed 42, drop 0.15)");
            demo_trace()
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("usage: trace_summary FILE.jsonl | trace_summary --demo");
            std::process::exit(2);
        }
    };
    let (rows, total, bad) = summarize(&text);
    render(&rows, total, bad);
    let (qrows, untagged_retx) = summarize_queries(&text);
    render_queries(&qrows, untagged_retx);
    render_kinds(&summarize_kinds(&qrows));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic JSONL in the exact shape [`elink_netsim::JsonlTrace`]
    /// emits: first-attempt sends have no `retx` field, ARQ
    /// retransmissions carry `"retx":1`, and query-tagged lines carry
    /// `qid`.
    const SYNTHETIC: &str = concat!(
        "{\"t\":0,\"ev\":\"send\",\"from\":0,\"to\":1,\"qid\":7}\n",
        "{\"t\":1,\"ev\":\"drop\",\"from\":0,\"to\":1,\"reason\":\"loss\",\"qid\":7}\n",
        "{\"t\":5,\"ev\":\"send\",\"from\":0,\"to\":1,\"retx\":1,\"qid\":7}\n",
        "{\"t\":6,\"ev\":\"deliver\",\"from\":0,\"to\":1,\"qid\":7}\n",
        "{\"t\":6,\"ev\":\"send\",\"from\":1,\"to\":2,\"qid\":9}\n",
        "{\"t\":8,\"ev\":\"deliver\",\"from\":1,\"to\":2,\"qid\":9}\n",
        "{\"t\":9,\"ev\":\"send\",\"from\":2,\"to\":3}\n",
        "{\"t\":11,\"ev\":\"send\",\"from\":2,\"to\":3,\"retx\":1}\n",
        "{\"t\":10,\"ev\":\"timer\",\"node\":2}\n",
        "{\"t\":12,\"ev\":\"drop\",\"from\":3,\"to\":3,\"reason\":\"shed\",\"qid\":11}\n",
    );

    #[test]
    fn per_query_rows_split_first_sends_from_retransmissions() {
        let (rows, untagged_retx) = summarize_queries(SYNTHETIC);
        assert_eq!(rows.len(), 3, "untagged lines must not create rows");
        // The shed query: one admission refusal, nothing on the wire — the
        // overload column carries it, the drop column must not.
        let q11 = &rows[&11];
        assert_eq!((q11.sends, q11.drops, q11.shed), (0, 0, 1));
        let q7 = &rows[&7];
        assert_eq!(q7.sends, 1, "retransmission counted as a first send");
        assert_eq!(q7.retx, 1);
        assert_eq!(q7.drops, 1);
        assert_eq!(q7.delivers, 1);
        assert_eq!((q7.first_t, q7.last_t), (0, 6));
        let q9 = &rows[&9];
        assert_eq!((q9.sends, q9.retx, q9.delivers, q9.drops), (1, 0, 1, 0));
        // The qid-less retransmission is not lost: it lands in the
        // explicit untagged-retx tally, not under any query or kind.
        assert_eq!(untagged_retx, 1);
    }

    /// Query-tagged lines across all four serving namespaces: two one-shot
    /// qids, one push (bit 40), one repair (bit 41), one control (bit 42).
    const SYNTHETIC_KINDS: &str = concat!(
        "{\"t\":0,\"ev\":\"send\",\"from\":0,\"to\":1,\"qid\":7}\n",
        "{\"t\":1,\"ev\":\"deliver\",\"from\":0,\"to\":1,\"qid\":7}\n",
        "{\"t\":2,\"ev\":\"send\",\"from\":1,\"to\":2,\"qid\":8}\n",
        "{\"t\":3,\"ev\":\"send\",\"from\":3,\"to\":4,\"qid\":1099511627781}\n", // push | sid 5
        "{\"t\":4,\"ev\":\"deliver\",\"from\":3,\"to\":4,\"qid\":1099511627781}\n",
        "{\"t\":5,\"ev\":\"send\",\"from\":4,\"to\":3,\"qid\":2199023255554}\n", // repair | template 2
        "{\"t\":6,\"ev\":\"drop\",\"from\":4,\"to\":3,\"reason\":\"loss\",\"qid\":2199023255554}\n",
        "{\"t\":7,\"ev\":\"send\",\"from\":4,\"to\":3,\"retx\":1,\"qid\":2199023255554}\n",
        "{\"t\":8,\"ev\":\"send\",\"from\":5,\"to\":6,\"qid\":4398046511109}\n", // control | sid 5
    );

    #[test]
    fn kind_rows_split_serving_pipelines_by_qid_namespace() {
        use elink_netsim::{QID_SUB_CONTROL, QID_SUB_PUSH, QID_SUB_REPAIR};
        // The literals above are the namespace bits; keep them honest.
        assert_eq!(QID_SUB_PUSH | 5, 1099511627781);
        assert_eq!(QID_SUB_REPAIR | 2, 2199023255554);
        assert_eq!(QID_SUB_CONTROL | 5, 4398046511109);
        let (rows, _) = summarize_queries(SYNTHETIC_KINDS);
        let kinds = summarize_kinds(&rows);
        assert_eq!(
            kinds.keys().copied().collect::<Vec<_>>(),
            ["control", "oneshot", "push", "repair"]
        );
        let oneshot = &kinds["oneshot"];
        assert_eq!((oneshot.sends, oneshot.delivers), (2, 1), "qids 7 and 8");
        let push = &kinds["push"];
        assert_eq!((push.sends, push.delivers, push.retx), (1, 1, 0));
        let repair = &kinds["repair"];
        assert_eq!((repair.sends, repair.retx, repair.drops), (1, 1, 1));
        assert_eq!((repair.first_t, repair.last_t), (5, 7));
        let control = &kinds["control"];
        assert_eq!((control.sends, control.delivers), (1, 0));
    }

    #[test]
    fn node_tallies_split_retransmissions_from_first_sends() {
        let (rows, total, bad) = summarize(SYNTHETIC);
        assert_eq!(total, 10);
        assert_eq!(bad, 0);
        // Node 3's admission refusal: overload column only, never a drop.
        assert_eq!((rows[3].shed, rows[3].drops), (1, 0));
        // Node 0: one first attempt, one retransmission, one drop — the
        // retransmission must not inflate `sends`.
        assert_eq!(rows[0].sends, 1);
        assert_eq!(rows[0].retx, 1);
        assert_eq!(rows[0].drops, 1);
        assert_eq!(rows[1].delivers, 1);
        // Node 2: one untagged first send, one untagged retransmission.
        assert_eq!(rows[2].sends, 1);
        assert_eq!(rows[2].retx, 1);
        assert_eq!(rows[2].timers, 1);
    }
}
