//! Runs the offered-load × capacity sweep and writes
//! `BENCH_contention.json` (schema `elink-contention/v1`).
//!
//! ```text
//! contention_report [--check] [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report (default
//!   `BENCH_contention.json`).
//! * `--check` — run the sweep twice and fail (exit 1) unless the
//!   documents are byte-identical. The report has no wall-clock fields, so
//!   this is a full-document determinism gate for the flow-level link
//!   model: every tentative-completion invalidation and reschedule must
//!   replay exactly.
//!
//! Independent of `--check`, the run fails (exit 1) if the queueing knee
//! is missing — for any capacity, p99 latency must be non-decreasing in
//! offered load and must grow superlinearly past saturation
//! (see `elink_bench::contention::knee_violation`).

use elink_bench::contention::{contention_report_json, knee_violation, run_sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = String::from("BENCH_contention.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: contention_report [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let points = run_sweep();
    for p in &points {
        println!(
            "cap={:<3} gap={:<3} offered={:<5.3}/tick done={:<4} p50={:<5} p99={:<6} queued={:<8} busiest_link={}t",
            p.capacity,
            p.mean_gap,
            p.offered_milli as f64 / 1000.0,
            p.done,
            p.p50,
            p.p99,
            p.queued_ms,
            p.link_busy_peak,
        );
    }

    if let Some(violation) = knee_violation(&points) {
        eprintln!("KNEE FAILURE: {violation}");
        std::process::exit(1);
    }

    if check {
        eprintln!("--check: re-running the sweep to verify determinism...");
        let again = run_sweep();
        let a = contention_report_json(&points);
        let b = contention_report_json(&again);
        if a != b {
            eprintln!("DETERMINISM FAILURE: contention sweep differs across same-seed runs");
            for (la, lb) in a.lines().zip(b.lines()) {
                if la != lb {
                    eprintln!("  run 1: {la}");
                    eprintln!("  run 2: {lb}");
                }
            }
            std::process::exit(1);
        }
        eprintln!("--check: documents byte-identical across two runs");
    }

    let json = contention_report_json(&points);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
