//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `figures` — one Criterion benchmark per paper figure (quick presets of
//!   the `elink-experiments` harness).
//! * `clustering_algorithms` — head-to-head clustering benchmarks (ELink
//!   implicit/explicit/unordered, spanning forest, hierarchical) across
//!   network sizes.
//! * `query_processing` — range/path query and index-build benchmarks.
//! * `substrates` — simulator event throughput, routing-table builds,
//!   AR/RLS fitting, spectral embedding.
