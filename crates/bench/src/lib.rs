//! Benchmarks and the machine-readable perf harness.
//!
//! Criterion benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper figure (quick presets of
//!   the `elink-experiments` harness).
//! * `clustering_algorithms` — head-to-head clustering benchmarks (ELink
//!   implicit/explicit/unordered, spanning forest, hierarchical) across
//!   network sizes.
//! * `query_processing` — range/path query and index-build benchmarks.
//! * `substrates` — simulator event throughput, routing-table builds,
//!   AR/RLS fitting, spectral embedding.
//!
//! The [`report`] module backs two dev binaries:
//!
//! * `bench_report` — runs quick experiment presets and writes
//!   `BENCH_elink.json` (`--check` verifies same-seed determinism);
//! * `trace_summary` — renders a [`elink_netsim::JsonlTrace`] event log as
//!   per-node send/deliver/drop tables.
//!
//! The [`scale`] module backs `scale_report`, the 1k→64k fleet-size sweep
//! behind `BENCH_scale.json`: msgs/node and bytes/node curves against the
//! paper's O(N) claim, plus wall-clock for both scheduler backends (the
//! calendar-queue speedup scoreboard).
//!
//! The [`contention`] module backs `contention_report`, the offered-load ×
//! capacity sweep behind `BENCH_contention.json`: the 1k-node serving
//! benchmark over a contention-aware `FairShareLink`, showing the queueing
//! knee (p99 superlinear past saturation).
//!
//! The [`admission`] module backs `admission_report`, the load-admission
//! A/B sweep behind `BENCH_admission.json`: the same cap-64 sweep with the
//! load ladder off vs on, gating that admission bounds the served tail
//! past the knee without losing work or goodput.
//!
//! This crate is deliberately outside simlint's protocol-crate set: it is
//! the one place in the workspace allowed to measure host wall-clock.

#![warn(missing_docs)]

/// The load-admission A/B sweep behind `BENCH_admission.json`.
pub mod admission;
/// The offered-load × capacity contention sweep behind `BENCH_contention.json`.
pub mod contention;
/// Quick experiment presets behind `BENCH_elink.json` and `trace_summary`.
pub mod report;
/// The 1k→64k fleet-size scaling bench behind `BENCH_scale.json`.
pub mod scale;
/// The standing-query push-vs-requery bench behind `BENCH_sub.json`.
pub mod subbench;
