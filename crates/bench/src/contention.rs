//! The offered-load × capacity sweep behind `BENCH_contention.json`.
//!
//! Every per-message link model prices transfers independently, so serving
//! latency is flat in offered load — which hides exactly the regime a
//! shared radio medium cares about. This bench drives the 1k-node serving
//! benchmark (the `workload_report` deployment) over a
//! [`FairShareLink`](elink_netsim::FairShareLink) and sweeps the open-loop arrival gap across each link
//! capacity: as the offered rate approaches the bottleneck links'
//! capacity, transfers start queueing behind each other, and tail latency
//! leaves the flat region *superlinearly* — the queueing knee.
//!
//! Everything in the report is a function of (deployment seed, workload
//! seed, grid), with no wall-clock fields at all: the
//! `contention_report --check` CI gate reruns the whole sweep and
//! requires byte-identical documents.

use elink_metric::Absolute;
use elink_netsim::FairShareLink;
use elink_workload::{Arrival, ServeOptions, SloReport, WorkloadSim, WorkloadSpec};
use std::sync::Arc;

/// Schema identifier of the `BENCH_contention.json` document.
pub const CONTENTION_SCHEMA: &str = "elink-contention/v1";

/// One (capacity, offered-load) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionPoint {
    /// Per-directed-link capacity, scalars per tick.
    pub capacity: u64,
    /// Mean open-loop inter-arrival gap (ticks).
    pub mean_gap: u64,
    /// Offered load: queries per 1000 ticks (`1000 / mean_gap`).
    pub offered_milli: u64,
    /// Queries completed (must equal the submitted count — contention
    /// shifts time, never correctness).
    pub done: u64,
    /// Median query latency (ticks).
    pub p50: u64,
    /// 90th-percentile query latency (ticks).
    pub p90: u64,
    /// 99th-percentile query latency (ticks).
    pub p99: u64,
    /// Maximum query latency (ticks).
    pub max: u64,
    /// Achieved throughput, completions per 1000 ticks.
    pub throughput_milli: u64,
    /// Final simulated tick.
    pub sim_ticks: u64,
    /// Total excess queueing across all transfers (ticks spent waiting
    /// behind other flows) — the direct congestion integral.
    pub queued_ms: u64,
    /// Directed links that carried at least one flow.
    pub links_used: i64,
    /// Busy ticks on the busiest single link (the bottleneck residency).
    pub link_busy_peak: i64,
    /// Peak concurrent flows on any single link.
    pub link_peak_flows: i64,
}

/// The sweep grid: each capacity is swept over every arrival gap, heaviest
/// load last. The two capacities play different roles: the *smaller* one
/// saturates the deployment's bottleneck links inside the sweep, so its
/// p99 curve bends upward (the knee); the *larger* one clears the heaviest
/// offered load with headroom, so its curve stays flat — the control that
/// shows the bend is contention, not protocol overhead.
pub const CAPACITIES: [u64; 2] = [64, 256];
/// Open-loop mean inter-arrival gaps (ticks), lightest load first.
pub const MEAN_GAPS: [u64; 4] = [48, 12, 3, 1];

/// The serving preset shared by every cell: the `workload_report` 1k-node
/// terrain deployment, 120 mixed queries, query-only (updates would blur
/// the latency attribution), recovery off so backlogged queries wait
/// rather than give up.
fn preset(mean_gap: u64) -> (WorkloadSpec, f64) {
    let mut spec = WorkloadSpec::quick(42);
    spec.n_queries = 120;
    spec.n_updates = 0;
    spec.arrival = Arrival::Open { mean_gap };
    (spec, 300.0)
}

/// Runs one cell of the sweep over a prebuilt terrain dataset.
pub fn run_point(
    data: &elink_datasets::TerrainDataset,
    capacity: u64,
    mean_gap: u64,
) -> ContentionPoint {
    let (spec, delta) = preset(mean_gap);
    let sim = WorkloadSim::build_with_link(
        data.topology().clone(),
        data.features(),
        Arc::new(Absolute),
        delta,
        &spec,
        ServeOptions::for_delta(delta),
        FairShareLink::new(capacity),
        None,
    );
    let run = sim.run_concurrent();
    // Reuse the SLO folding for the percentile math; wall-clock is not
    // part of this report at all.
    let slo = SloReport::from_run(&run, 0);
    ContentionPoint {
        capacity,
        mean_gap,
        offered_milli: 1000 / mean_gap,
        done: slo.done,
        p50: slo.latency.p50,
        p90: slo.latency.p90,
        p99: slo.latency.p99,
        max: slo.latency.max,
        throughput_milli: slo.throughput_milli,
        sim_ticks: slo.sim_ticks,
        queued_ms: run.metrics.counter("net.queued_ms"),
        links_used: run.metrics.gauge("net.links.used").unwrap_or(0),
        link_busy_peak: run.metrics.gauge("net.link.busy_peak_ticks").unwrap_or(0),
        link_peak_flows: run.metrics.gauge("net.link.peak_flows").unwrap_or(0),
    }
}

/// Runs the full sweep (see [`CAPACITIES`] × [`MEAN_GAPS`]).
pub fn run_sweep() -> Vec<ContentionPoint> {
    let data = elink_datasets::TerrainDataset::generate(1024, 6, 0.55, 7);
    let mut points = Vec::new();
    for &capacity in &CAPACITIES {
        for &mean_gap in &MEAN_GAPS {
            points.push(run_point(&data, capacity, mean_gap));
        }
    }
    points
}

fn point_json(p: &ContentionPoint) -> String {
    format!(
        concat!(
            "{{\"capacity\":{},\"mean_gap\":{},\"offered_milli\":{},",
            "\"done\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},",
            "\"throughput_milli\":{},\"sim_ticks\":{},\"queued_ms\":{},",
            "\"links_used\":{},\"link_busy_peak\":{},\"link_peak_flows\":{}}}"
        ),
        p.capacity,
        p.mean_gap,
        p.offered_milli,
        p.done,
        p.p50,
        p.p90,
        p.p99,
        p.max,
        p.throughput_milli,
        p.sim_ticks,
        p.queued_ms,
        p.links_used,
        p.link_busy_peak,
        p.link_peak_flows,
    )
}

/// The full `BENCH_contention.json` payload. Every field is deterministic;
/// two runs of the same grid must produce byte-identical documents.
pub fn contention_report_json(points: &[ContentionPoint]) -> String {
    let cells: Vec<String> = points.iter().map(point_json).collect();
    format!(
        "{{\"schema\":\"{}\",\"results\":[\n{}\n]}}\n",
        CONTENTION_SCHEMA,
        cells.join(",\n")
    )
}

/// Audits the knee. Within each capacity's sweep (lightest → heaviest
/// load) p99 must be monotonically non-decreasing; on top of that the two
/// capacities must show their contrasting shapes:
///
/// * **smallest capacity** — *superlinear past saturation*: the p99-vs-
///   offered-load slope of the final segment must be at least twice the
///   slope of the first segment (the curve accelerates — a knee, not a
///   ramp), and the heaviest point must have recorded real queueing;
/// * **largest capacity** — *flat under headroom*: heaviest-load p99 stays
///   under 2× the lightest-load p99 across the whole sweep, pinning the
///   bend to contention rather than protocol overhead.
///
/// Returns a violation description, or `None` when the knee is present.
pub fn knee_violation(points: &[ContentionPoint]) -> Option<String> {
    for &capacity in &CAPACITIES {
        let sweep: Vec<&ContentionPoint> =
            points.iter().filter(|p| p.capacity == capacity).collect();
        if sweep.len() < 3 {
            return Some(format!("capacity {capacity}: fewer than 3 sweep points"));
        }
        for w in sweep.windows(2) {
            if w[1].p99 < w[0].p99 {
                return Some(format!(
                    "capacity {capacity}: p99 dropped from {} (gap {}) to {} (gap {})",
                    w[0].p99, w[0].mean_gap, w[1].p99, w[1].mean_gap
                ));
            }
        }
        let (light, heavy) = (sweep[0], sweep[sweep.len() - 1]);
        if capacity == CAPACITIES[0] {
            // Integer milli-slopes of the first and last sweep segments.
            let slope = |a: &ContentionPoint, b: &ContentionPoint| {
                (b.p99 - a.p99).saturating_mul(1000) / (b.offered_milli - a.offered_milli).max(1)
            };
            let first = slope(sweep[0], sweep[1]);
            let last = slope(sweep[sweep.len() - 2], heavy);
            if last < first.saturating_mul(2) {
                return Some(format!(
                    "capacity {capacity}: no knee — final p99 slope {last} \
                     not ≥ 2× the initial slope {first}"
                ));
            }
            if heavy.queued_ms == 0 {
                return Some(format!(
                    "capacity {capacity}: heaviest load recorded no queueing"
                ));
            }
        } else if heavy.p99 >= 2 * light.p99.max(1) {
            return Some(format!(
                "capacity {capacity}: headroom control not flat — p99 {} → {}",
                light.p99, heavy.p99
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep (small fleet, one capacity) exercises the full
    /// point pipeline: deterministic reruns, queueing visible under load,
    /// every query completed.
    #[test]
    fn mini_sweep_is_deterministic_and_queues_under_load() {
        let data = elink_datasets::TerrainDataset::generate(96, 6, 0.55, 7);
        let light = run_point(&data, 2, 24);
        let heavy = run_point(&data, 2, 1);
        let again = run_point(&data, 2, 1);
        assert_eq!(heavy, again, "same-seed points must be byte-identical");
        assert_eq!(light.done, heavy.done, "load must never lose queries");
        assert!(heavy.queued_ms > light.queued_ms);
        assert!(heavy.p99 >= light.p99);
        assert!(heavy.links_used > 0 && heavy.link_peak_flows > 0);
    }

    #[test]
    fn report_is_schema_tagged_and_balanced() {
        let data = elink_datasets::TerrainDataset::generate(96, 6, 0.55, 7);
        let p = run_point(&data, 4, 8);
        let json = contention_report_json(&[p]);
        assert!(json.contains("\"schema\":\"elink-contention/v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
