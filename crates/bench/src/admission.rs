//! The load-admission A/B sweep behind `BENCH_admission.json`.
//!
//! The contention sweep (`contention.rs`) shows the problem: past the
//! saturation knee of a capacity-64 deployment, tail latency leaves the
//! flat region superlinearly. This bench shows the cure and its price.
//! Each offered-load point of the cap-64 sweep runs twice over the same
//! seeds — once with the load-admission ladder disarmed (the PR 9 ladder
//! is table-occupancy-only) and once armed with the default
//! [`LoadAdmission`](elink_workload::LoadAdmission) thresholds — and the
//! report carries both sides so the gate can compare them directly:
//!
//! * **bounded tail** — with admission on, the p99 of *served* work
//!   (admitted + degraded, shed excluded) must not blow up superlinearly
//!   past saturation the way the admission-off curve does;
//! * **no lost work** — every submission still completes: shed queries
//!   are explicit zero-coverage answers, so `done` matches the off side;
//! * **goodput** — exact (full-coverage) completions per 1000 ticks must
//!   not fall below the admission-off baseline at the heaviest load: the
//!   ladder trades coverage it could not have served in time for
//!   responsiveness, not for throughput.
//!
//! Everything in the report is a function of (deployment seed, workload
//! seed, grid) — deterministic integer arithmetic end to end, so the
//! `admission_report --check` CI gate reruns the sweep and requires
//! byte-identical documents.

use crate::contention::MEAN_GAPS;
use elink_metric::Absolute;
use elink_netsim::FairShareLink;
use elink_workload::{Arrival, LoadAdmission, ServeOptions, WorkloadSim, WorkloadSpec};
use std::sync::Arc;

/// Schema identifier of the `BENCH_admission.json` document.
pub const ADMISSION_SCHEMA: &str = "elink-admission/v1";

/// The A/B capacity: the sweep's saturating side (the 256 control of the
/// contention sweep never congests, so admission would be a no-op there).
pub const ADMISSION_CAPACITY: u64 = 64;

/// One (offered-load, ladder-armed) cell of the A/B sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPoint {
    /// Mean open-loop inter-arrival gap (ticks).
    pub mean_gap: u64,
    /// Offered load: queries per 1000 ticks (`1000 / mean_gap`).
    pub offered_milli: u64,
    /// Whether the load-admission ladder was armed.
    pub admission: bool,
    /// Queries completed (must equal the submitted count on both sides —
    /// shedding is explicit completion, never loss).
    pub done: u64,
    /// Load ladder full-scope admissions (equals `done` when disarmed).
    pub admitted: u64,
    /// Load ladder degradations (local-cluster answers).
    pub degraded: u64,
    /// Load ladder sheds (immediate explicit zero-coverage answers).
    pub shed: u64,
    /// Completions with full coverage (exact answers).
    pub exact: u64,
    /// Median latency of *served* queries (shed excluded), ticks.
    pub served_p50: u64,
    /// 99th-percentile latency of served queries, ticks.
    pub served_p99: u64,
    /// Maximum latency of served queries, ticks.
    pub served_max: u64,
    /// Exact answers per 1000 ticks — the goodput the gate compares.
    pub goodput_milli: u64,
    /// Final simulated tick.
    pub sim_ticks: u64,
    /// Total excess queueing across all transfers (ticks).
    pub queued_ms: u64,
}

/// The serving preset: identical to the contention sweep's (1k-node
/// terrain deployment, 120 mixed open-loop queries, query-only, recovery
/// off) so the two reports describe the same system.
fn preset(mean_gap: u64) -> (WorkloadSpec, f64) {
    let mut spec = WorkloadSpec::quick(42);
    spec.n_queries = 120;
    spec.n_updates = 0;
    spec.arrival = Arrival::Open { mean_gap };
    (spec, 300.0)
}

/// Integer percentile over an ascending latency vector (nearest-rank).
fn pct(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs one cell: the cap-64 deployment at `mean_gap`, ladder armed or
/// not.
pub fn run_point(
    data: &elink_datasets::TerrainDataset,
    mean_gap: u64,
    admission: bool,
) -> AdmissionPoint {
    let (spec, delta) = preset(mean_gap);
    let mut opts = ServeOptions::for_delta(delta);
    if admission {
        opts.qos.load = Some(LoadAdmission::default());
    }
    let sim = WorkloadSim::build_with_link(
        data.topology().clone(),
        data.features(),
        Arc::new(Absolute),
        delta,
        &spec,
        opts,
        FairShareLink::new(ADMISSION_CAPACITY),
        None,
    );
    let run = sim.run_concurrent();
    let mut served: Vec<u64> = run
        .completed
        .iter()
        .filter(|c| !c.shed)
        .map(|c| c.finished - c.submitted)
        .collect();
    served.sort_unstable();
    let exact = run
        .completed
        .iter()
        .filter(|c| c.coverage_milli == 1000)
        .count() as u64;
    AdmissionPoint {
        mean_gap,
        offered_milli: 1000 / mean_gap,
        admission,
        done: run.completed.len() as u64,
        admitted: run.metrics.counter("serve.admitted"),
        degraded: run.metrics.counter("serve.degraded"),
        shed: run.metrics.counter("serve.shed"),
        exact,
        served_p50: pct(&served, 50),
        served_p99: pct(&served, 99),
        served_max: served.last().copied().unwrap_or(0),
        goodput_milli: exact.saturating_mul(1000) / run.sim_ticks.max(1),
        sim_ticks: run.sim_ticks,
        queued_ms: run.metrics.counter("net.queued_ms"),
    }
}

/// Runs the full A/B sweep: every contention gap, off then on.
pub fn run_sweep() -> Vec<AdmissionPoint> {
    let data = elink_datasets::TerrainDataset::generate(1024, 6, 0.55, 7);
    let mut points = Vec::new();
    for &mean_gap in &MEAN_GAPS {
        points.push(run_point(&data, mean_gap, false));
        points.push(run_point(&data, mean_gap, true));
    }
    points
}

fn point_json(p: &AdmissionPoint) -> String {
    format!(
        concat!(
            "{{\"mean_gap\":{},\"offered_milli\":{},\"admission\":{},",
            "\"done\":{},\"admitted\":{},\"degraded\":{},\"shed\":{},",
            "\"exact\":{},\"served_p50\":{},\"served_p99\":{},",
            "\"served_max\":{},\"goodput_milli\":{},\"sim_ticks\":{},",
            "\"queued_ms\":{}}}"
        ),
        p.mean_gap,
        p.offered_milli,
        p.admission,
        p.done,
        p.admitted,
        p.degraded,
        p.shed,
        p.exact,
        p.served_p50,
        p.served_p99,
        p.served_max,
        p.goodput_milli,
        p.sim_ticks,
        p.queued_ms,
    )
}

/// The full `BENCH_admission.json` payload. Every field is deterministic;
/// two runs of the same grid must produce byte-identical documents.
pub fn admission_report_json(points: &[AdmissionPoint]) -> String {
    let cells: Vec<String> = points.iter().map(point_json).collect();
    format!(
        "{{\"schema\":\"{}\",\"capacity\":{},\"results\":[\n{}\n]}}\n",
        ADMISSION_SCHEMA,
        ADMISSION_CAPACITY,
        cells.join(",\n")
    )
}

/// Audits the A/B contract over a full sweep (see module docs):
///
/// 1. **No lost work** — at every gap, both sides complete every
///    submission (`done` equal), and on the on side the admission buckets
///    partition it.
/// 2. **The ladder bites** — at the heaviest load the on side actually
///    shed or degraded something (otherwise the thresholds are dead
///    letters and the comparison is vacuous).
/// 3. **Bounded tail** — the on side's served-p99 curve has no convex
///    blow-up segment: its final-segment milli-slope must stay *below*
///    2× its initial slope (the admission-off curve is required to bend
///    superlinearly by the contention gate; the whole point of the ladder
///    is that the on curve does not), and at the heaviest load the on
///    side's served p99 must be strictly below the off side's.
/// 4. **Goodput** — at the heaviest load, exact completions per 1000
///    ticks with admission on must be at least the admission-off value.
///
/// Returns a violation description, or `None` when the contract holds.
pub fn admission_violation(points: &[AdmissionPoint]) -> Option<String> {
    let side = |armed: bool| -> Vec<&AdmissionPoint> {
        points.iter().filter(|p| p.admission == armed).collect()
    };
    let (off, on) = (side(false), side(true));
    if off.len() != MEAN_GAPS.len() || on.len() != MEAN_GAPS.len() {
        return Some(format!(
            "incomplete sweep: {} off / {} on points (need {} each)",
            off.len(),
            on.len(),
            MEAN_GAPS.len()
        ));
    }
    for (o, a) in off.iter().zip(&on) {
        if o.mean_gap != a.mean_gap {
            return Some("off/on points out of phase".into());
        }
        if o.done != a.done {
            return Some(format!(
                "gap {}: admission lost work — done {} (off) vs {} (on)",
                o.mean_gap, o.done, a.done
            ));
        }
        if a.admitted + a.degraded + a.shed != a.done {
            return Some(format!(
                "gap {}: admission buckets {}+{}+{} do not partition done={}",
                a.mean_gap, a.admitted, a.degraded, a.shed, a.done
            ));
        }
    }
    let (on_heavy, off_heavy) = (on[on.len() - 1], off[off.len() - 1]);
    if on_heavy.shed + on_heavy.degraded == 0 {
        return Some(format!(
            "gap {}: the ladder never fired past saturation — thresholds are dead letters",
            on_heavy.mean_gap
        ));
    }
    // Anti-knee: milli-slope of served p99 vs offered load, first and
    // final segment of the armed sweep.
    let slope = |a: &AdmissionPoint, b: &AdmissionPoint| {
        b.served_p99
            .saturating_sub(a.served_p99)
            .saturating_mul(1000)
            / (b.offered_milli - a.offered_milli).max(1)
    };
    let first = slope(on[0], on[1]);
    let last = slope(on[on.len() - 2], on_heavy);
    if last >= first.max(1).saturating_mul(2) {
        return Some(format!(
            "admission-on p99 still blows up: final slope {last} ≥ 2× initial slope {first}"
        ));
    }
    if on_heavy.served_p99 >= off_heavy.served_p99 {
        return Some(format!(
            "heaviest load: admission-on served p99 {} not below admission-off {}",
            on_heavy.served_p99, off_heavy.served_p99
        ));
    }
    if on_heavy.goodput_milli < off_heavy.goodput_milli {
        return Some(format!(
            "heaviest load: admission-on goodput {} below admission-off {}",
            on_heavy.goodput_milli, off_heavy.goodput_milli
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature A/B pair on a small fleet: deterministic reruns, no
    /// lost work, and the admission buckets partition the completions.
    #[test]
    fn mini_ab_pair_is_deterministic_and_loses_nothing() {
        let data = elink_datasets::TerrainDataset::generate(96, 6, 0.55, 7);
        let off = run_point(&data, 1, false);
        let on = run_point(&data, 1, true);
        let again = run_point(&data, 1, true);
        assert_eq!(on, again, "same-seed points must be byte-identical");
        assert_eq!(off.done, on.done, "admission must never lose queries");
        assert_eq!(on.admitted + on.degraded + on.shed, on.done);
        assert_eq!(off.admitted, off.done, "disarmed side admits everything");
        assert_eq!(off.degraded + off.shed, 0);
    }

    #[test]
    fn report_is_schema_tagged_and_balanced() {
        let data = elink_datasets::TerrainDataset::generate(96, 6, 0.55, 7);
        let p = run_point(&data, 8, true);
        let json = admission_report_json(&[p]);
        assert!(json.contains("\"schema\":\"elink-admission/v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(pct(&[], 99), 0);
        assert_eq!(pct(&[7], 50), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(pct(&v, 50), 50);
        assert_eq!(pct(&v, 99), 99);
        assert_eq!(pct(&v, 100), 100);
    }
}
