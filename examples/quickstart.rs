//! Quickstart: cluster a small sensor grid with ELink and inspect the
//! result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use elink::core::{run_implicit, validate_delta_clustering, ElinkConfig};
use elink::metric::{Absolute, Feature};
use elink::netsim::SimNetwork;
use elink::topology::Topology;
use std::sync::Arc;

fn main() {
    // An 8×8 sensor grid. Each sensor's "feature" is a scalar reading —
    // here a synthetic two-zone field: cool west half, warm east half with
    // a gentle gradient inside each zone.
    let side = 8;
    let topology = Topology::grid(side, side);
    let features: Vec<Feature> = (0..topology.n())
        .map(|v| {
            let col = v % side;
            let base = if col < side / 2 { 10.0 } else { 30.0 };
            Feature::scalar(base + 0.5 * col as f64)
        })
        .collect();

    // δ-clustering: any two sensors in a cluster must read within δ of each
    // other. ElinkConfig::for_delta applies the paper's defaults
    // (φ = 0.1 δ, at most 4 cluster switches per node).
    let delta = 6.0;
    let network = SimNetwork::new(topology.clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(delta),
    );

    println!("network: {side}x{side} grid, delta = {delta}");
    println!(
        "ELink clustered {} nodes into {} clusters in {} simulated ticks using {} message units",
        topology.n(),
        outcome.clustering.cluster_count(),
        outcome.elapsed,
        outcome.costs.total_cost(),
    );
    for (id, cluster) in outcome.clustering.clusters.iter().enumerate() {
        println!(
            "  cluster {id}: root {} (feature {}), {} members",
            cluster.root,
            cluster.root_feature,
            cluster.members.len()
        );
    }

    // Check Definition 1 end to end: disjoint cover, connectivity and
    // pairwise δ-compactness.
    validate_delta_clustering(&outcome.clustering, &topology, &features, &Absolute, delta)
        .expect("ELink must produce a valid delta-clustering");
    println!("validated: every cluster is connected and delta-compact");

    // Render the cluster map.
    println!("\ncluster map (one digit/letter per sensor):");
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    for row in 0..side {
        let line: String = (0..side)
            .map(|col| {
                let c = outcome.clustering.cluster_of(row * side + col);
                GLYPHS[c % GLYPHS.len()] as char
            })
            .collect();
        println!("  {line}");
    }
}
