//! Ocean-monitoring scenario on the Tao-like sea-surface-temperature data
//! (§8.1): train AR models, discover temperature zones with ELink, then
//! answer "which regions behave like node x?" range queries through the
//! distributed index.
//!
//! ```sh
//! cargo run --release --example tao_monitoring
//! ```

use elink::core::{run_implicit, ElinkConfig};
use elink::datasets::{TaoDataset, TaoParams};
use elink::netsim::SimNetwork;
use elink::query::{brute_force_range, elink_range_query, Backbone, DistributedIndex};
use std::sync::Arc;

fn main() {
    // A month of 10-minute SST readings on the 6×9 TAO buoy grid
    // (synthetic equivalent; see DESIGN.md).
    let data = TaoDataset::generate(
        TaoParams {
            rows: 6,
            cols: 9,
            day_len: 144,
            days: 31,
        },
        2026,
    );
    println!("trained AR models on the previous month's data per buoy…");
    let features = data.features();
    let metric = Arc::new(data.metric().clone());

    // Every node's feature is (α1, β1, β2, β3): the within-day AR(1)
    // coefficient plus the AR(3) over daily means.
    let (rows, cols) = data.shape();
    println!("feature of NW buoy: {}", features[0]);
    println!("feature of SE buoy: {}", features[rows * cols - 1]);

    // Cluster into temperature zones.
    let delta = 0.15;
    let network = SimNetwork::new(data.topology().clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::clone(&metric) as _,
        ElinkConfig::for_delta(delta),
    );
    println!(
        "\nELink found {} zones at delta = {delta} ({} message units):",
        outcome.clustering.cluster_count(),
        outcome.costs.total_cost()
    );
    for row in 0..rows {
        let line: String = (0..cols)
            .map(|col| {
                char::from_digit(
                    (outcome.clustering.cluster_of(row * cols + col) % 36) as u32,
                    36,
                )
                .unwrap()
            })
            .collect();
        println!("  {line}");
    }

    // Build the query infrastructure: per-cluster M-tree + leader backbone.
    let (index, index_stats) =
        DistributedIndex::build(&outcome.clustering, &features, metric.as_ref());
    let (backbone, backbone_stats) = Backbone::build(&outcome.clustering, network.routing());
    println!(
        "\nindex built for {} message units, backbone for {}",
        index_stats.total_cost(),
        backbone_stats.total_cost()
    );

    // "Which buoys behave like the north-west corner buoy?"
    let probe = 0;
    let q = features[probe].clone();
    let radius = 0.8 * delta;
    let result = elink_range_query(
        &outcome.clustering,
        &index,
        &backbone,
        &features,
        metric.as_ref(),
        delta,
        probe,
        &q,
        radius,
    );
    assert_eq!(
        result.matches,
        brute_force_range(&features, metric.as_ref(), &q, radius),
        "query must be exact"
    );
    println!(
        "\nrange query from buoy {probe} (radius {radius:.3}): {} matches \
         for {} message units ({} clusters excluded, {} fully included, {} drilled)",
        result.matches.len(),
        result.costs.total_cost(),
        result.clusters_excluded,
        result.clusters_included,
        result.clusters_drilled,
    );
    let similar: Vec<String> = result
        .matches
        .iter()
        .map(|&v| format!("({},{})", v / cols, v % cols))
        .collect();
    println!("similar buoys (row,col): {}", similar.join(" "));
}
