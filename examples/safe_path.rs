//! Rescue-mission scenario (§7.3): find a path through a sensor field that
//! keeps a safety margin from a danger reading, comparing ELink's
//! cluster-pruned search against flooding BFS.
//!
//! ```sh
//! cargo run --release --example safe_path
//! ```

use elink::core::{run_implicit, ElinkConfig};
use elink::datasets::TerrainDataset;
use elink::metric::{Absolute, Feature, Metric};
use elink::netsim::SimNetwork;
use elink::query::{elink_path_query, flooding_path_query, Backbone, DistributedIndex};
use std::sync::Arc;

fn main() {
    // 500 sensors scattered over Death-Valley-like terrain; each sensor's
    // feature is its elevation. The "danger" is the valley floor (toxic
    // pool): a safe path must stay at least γ metres above it.
    let data = TerrainDataset::generate(500, 6, 0.55, 9);
    let features = data.features();
    let topology = data.topology();
    let floor = data
        .elevations()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let danger = Feature::scalar(floor);
    let gamma = 300.0;
    println!("valley floor at {floor:.0} m; safety margin γ = {gamma} m");

    // Cluster by elevation and build the query infrastructure.
    let delta = 250.0;
    let network = SimNetwork::new(topology.clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::new(Absolute),
        ElinkConfig::for_delta(delta),
    );
    let (index, _) = DistributedIndex::build(&outcome.clustering, &features, &Absolute);
    let (backbone, _) = Backbone::build(&outcome.clustering, network.routing());
    println!(
        "clustered into {} elevation bands at delta = {delta} m",
        outcome.clustering.cluster_count()
    );

    // Mission: from the highest safe sensor to a far safe sensor.
    let source = (0..topology.n())
        .max_by(|&a, &b| {
            data.elevations()[a]
                .partial_cmp(&data.elevations()[b])
                .unwrap()
        })
        .unwrap();
    let dest = (0..topology.n())
        .filter(|&v| Absolute.distance(&features[v], &danger) >= gamma)
        .max_by_key(|&v| topology.graph().bfs_hops(source)[v])
        .expect("a safe destination exists");
    println!(
        "mission: sensor {source} ({:.0} m) -> sensor {dest} ({:.0} m)",
        data.elevations()[source],
        data.elevations()[dest]
    );

    let elink = elink_path_query(
        &outcome.clustering,
        &index,
        &backbone,
        topology,
        &features,
        &Absolute,
        delta,
        source,
        dest,
        &danger,
        gamma,
    );
    let flood = flooding_path_query(topology, &features, &Absolute, source, dest, &danger, gamma);

    match (&elink.path, &flood.path) {
        (Some(p), Some(pf)) => {
            println!(
                "\nELink found a {}-hop safe path for {} message units \
                 ({} clusters safe, {} unsafe, {} refined through the index)",
                p.len() - 1,
                elink.costs.total_cost(),
                elink.clusters_safe,
                elink.clusters_unsafe,
                elink.clusters_mixed,
            );
            println!(
                "flooding BFS found a {}-hop path for {} message units",
                pf.len() - 1,
                flood.costs.total_cost()
            );
            println!(
                "communication saving: {:.1}x",
                flood.costs.total_cost() as f64 / elink.costs.total_cost().max(1) as f64
            );
            let min_clearance = p
                .iter()
                .map(|&v| data.elevations()[v] - floor)
                .fold(f64::INFINITY, f64::min);
            println!("minimum clearance along the path: {min_clearance:.0} m (γ = {gamma} m)");
        }
        (None, None) => {
            println!("no safe path exists at γ = {gamma} m — both algorithms agree");
        }
        _ => unreachable!("ELink and flooding must agree on path existence"),
    }
}
