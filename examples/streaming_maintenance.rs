//! Streaming maintenance (§6): keep a δ-clustering alive under a live
//! measurement stream with slack-based local filtering, and compare the
//! communication bill against centralized coefficient streaming.
//!
//! ```sh
//! cargo run --release --example streaming_maintenance
//! ```

use elink::armodel::TaoModel;
use elink::baselines::CentralizedUpdateSim;
use elink::core::{run_implicit, ElinkConfig, MaintenanceSim, UpdateOutcome};
use elink::datasets::{TaoDataset, TaoParams};
use elink::netsim::SimNetwork;
use std::sync::Arc;

fn main() {
    let data = TaoDataset::generate(
        TaoParams {
            rows: 6,
            cols: 9,
            day_len: 144,
            days: 14,
        },
        7,
    );
    let features = data.features();
    let metric = Arc::new(data.metric().clone());
    let topology = Arc::new(data.topology().clone());

    let delta = 0.15;
    let slack = 0.05 * delta;
    println!("delta = {delta}, slack = {slack:.4} (initial clustering at delta - 2*slack)");

    // Initial clustering at the reduced threshold δ − 2Δ (§6).
    let network = SimNetwork::new(data.topology().clone());
    let outcome = run_implicit(
        &network,
        &features,
        Arc::clone(&metric) as _,
        ElinkConfig::for_delta(delta - 2.0 * slack),
    );
    println!(
        "initial clustering: {} clusters for {} message units",
        outcome.clustering.cluster_count(),
        outcome.costs.total_cost()
    );

    let mut maint = MaintenanceSim::new(
        &outcome.clustering,
        Arc::clone(&topology),
        Arc::clone(&metric) as _,
        features.clone(),
        delta,
        slack,
    );
    let mut central = CentralizedUpdateSim::new(data.topology(), features.clone(), slack);

    // Stream two weeks of measurements through the per-node models.
    let mut models: Vec<TaoModel> = data.train_models();
    let steps = data.evaluation()[0].len();
    let mut outcome_counts = [0u64; 5]; // local, refreshed, merged, singleton, root-bcast
    for t in 0..steps {
        for (node, model) in models.iter_mut().enumerate() {
            model.observe(data.evaluation()[node][t]);
            let f = model.feature();
            match maint.update(node, f.clone()) {
                UpdateOutcome::LocalOnly => outcome_counts[0] += 1,
                UpdateOutcome::RefreshedAndStayed => outcome_counts[1] += 1,
                UpdateOutcome::Merged { .. } => outcome_counts[2] += 1,
                UpdateOutcome::Singleton => outcome_counts[3] += 1,
                UpdateOutcome::RootBroadcast { .. } => outcome_counts[4] += 1,
            }
            central.model_update(node, f, metric.as_ref());
        }
    }

    let total_updates: u64 = outcome_counts.iter().sum();
    println!("\nstreamed {total_updates} feature updates:");
    println!("  absorbed locally (A1/A2/A3): {}", outcome_counts[0]);
    println!("  root-feature refresh, stayed: {}", outcome_counts[1]);
    println!("  detached and merged:          {}", outcome_counts[2]);
    println!("  detached to singleton:        {}", outcome_counts[3]);
    println!("  root-drift broadcasts:        {}", outcome_counts[4]);
    println!(
        "\ncluster count after the stream: {} (was {})",
        maint.cluster_count(),
        outcome.clustering.cluster_count()
    );

    let elink_cost = maint.costs().total_cost();
    let central_cost = central.costs().kind("central_model").cost;
    println!("\nupdate communication bill:");
    println!("  ELink maintenance: {elink_cost} message units");
    println!("  centralized:       {central_cost} message units");
    println!(
        "  saving:            {:.1}x",
        central_cost as f64 / elink_cost.max(1) as f64
    );
}
